// Backend equivalence tests: every blocked/parallel kernel is differential-
// tested against the scalar ReferenceBackend, across the shapes that stress
// the tiling (1xN, Nx1, non-multiples of the register tile, empty and
// full-dense micro-tile indexes), plus bitwise determinism across thread
// counts.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/gemm_microkernel.h"
#include "pit/common/parallel_for.h"
#include "pit/core/batched_kernel.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/runtime/serving.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.bytes())) == 0;
}

struct MatmulShape {
  int64_t m, k, n;
};

const std::vector<MatmulShape>& OddShapes() {
  // 1xN, Nx1, scalar-ish, non-multiples of the 4x16 register tile, exact
  // multiples, and a k=0 degenerate.
  static const std::vector<MatmulShape> shapes = {
      {1, 37, 53},  {41, 29, 1}, {1, 1, 1},   {17, 33, 29}, {64, 64, 64},
      {5, 300, 2},  {3, 1, 19},  {128, 7, 31}, {65, 128, 47}, {4, 0, 9},
  };
  return shapes;
}

TEST(BackendTest, MatMulMatchesReferenceOnOddShapes) {
  for (const auto& s : OddShapes()) {
    Rng rng(100 + s.m + s.k + s.n);
    Tensor a = Tensor::Random({s.m, s.k}, rng);
    Tensor b = Tensor::Random({s.k, s.n}, rng);
    Tensor blocked, reference;
    {
      ScopedBackend guard(ComputeBackend::kBlocked);
      blocked = MatMul(a, b);
    }
    {
      ScopedBackend guard(ComputeBackend::kReference);
      reference = MatMul(a, b);
    }
    EXPECT_TRUE(AllClose(blocked, reference))
        << "shape " << s.m << "x" << s.k << "x" << s.n
        << " maxdiff " << MaxAbsDiff(blocked, reference);
  }
}

TEST(BackendTest, GemmPackAIsBitwiseIdenticalOnTallGatedShape) {
  // 1024x192x2048 is the smallest shape the A-packing gates admit (tall,
  // reuse band, deep k); the packed path must be bit-for-bit the unpacked
  // one, including the ragged trailing row block when m is not a multiple
  // of 4 — so also probe 1027 rows.
  for (const int64_t m : {int64_t{1024}, int64_t{1027}}) {
    Rng rng(300 + m);
    Tensor a = Tensor::Random({m, 2048}, rng);
    Tensor b = Tensor::Random({2048, 192}, rng);
    Tensor packed, unpacked;
    {
      ScopedGemmPackA pack(true);
      packed = MatMul(a, b);
    }
    {
      ScopedGemmPackA pack(false);
      unpacked = MatMul(a, b);
    }
    ASSERT_EQ(std::memcmp(packed.data(), unpacked.data(),
                          static_cast<size_t>(packed.size()) * sizeof(float)),
              0)
        << "packed-A GEMM diverged at m=" << m;
  }
}

TEST(BackendTest, GemmFusedReluEpilogueIsBitwiseExact) {
  // The fused relu epilogue must equal the separate matmul(+bias) -> relu
  // composition bit for bit, under both backends and across thread counts.
  Rng rng(400);
  Tensor a = Tensor::Random({37, 29}, rng);
  Tensor b = Tensor::Random({29, 41}, rng);
  Tensor bias = Tensor::Random({41}, rng);
  for (const ComputeBackend backend : {ComputeBackend::kBlocked, ComputeBackend::kReference}) {
    ScopedBackend guard(backend);
    for (int threads : {1, 4}) {
      ScopedNumThreads t(threads);
      Tensor fused({37, 41});
      MatMulBiasReluInto(a, b, bias, fused);
      Tensor expect = Relu(MatMulBias(a, b, bias));
      ASSERT_EQ(std::memcmp(fused.data(), expect.data(),
                            static_cast<size_t>(fused.size()) * sizeof(float)),
                0);
      Tensor fused_nobias({37, 41});
      MatMulReluInto(a, b, fused_nobias);
      Tensor expect_nobias = Relu(MatMul(a, b));
      ASSERT_EQ(std::memcmp(fused_nobias.data(), expect_nobias.data(),
                            static_cast<size_t>(fused_nobias.size()) * sizeof(float)),
                0);
    }
  }
}

TEST(BackendTest, MatMulBiasFusedEpilogueMatchesReference) {
  for (const auto& s : OddShapes()) {
    Rng rng(200 + s.m + s.k + s.n);
    Tensor a = Tensor::Random({s.m, s.k}, rng);
    Tensor b = Tensor::Random({s.k, s.n}, rng);
    Tensor bias = Tensor::Random({s.n}, rng);
    Tensor blocked, reference;
    {
      ScopedBackend guard(ComputeBackend::kBlocked);
      blocked = MatMulBias(a, b, bias);
    }
    {
      ScopedBackend guard(ComputeBackend::kReference);
      reference = MatMulBias(a, b, bias);
    }
    EXPECT_TRUE(AllClose(blocked, reference))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BackendTest, BatchMatMulMatchesReference) {
  Rng rng(7);
  Tensor a = Tensor::Random({5, 33, 29}, rng);
  Tensor b = Tensor::Random({5, 29, 17}, rng);
  Tensor blocked, reference;
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    blocked = BatchMatMul(a, b);
  }
  {
    ScopedBackend guard(ComputeBackend::kReference);
    reference = BatchMatMul(a, b);
  }
  EXPECT_TRUE(AllClose(blocked, reference));
}

TEST(BackendTest, MatMulBitwiseIdenticalAcrossThreadCounts) {
  ScopedBackend guard(ComputeBackend::kBlocked);
  Rng rng(11);
  Tensor a = Tensor::Random({130, 70}, rng);
  Tensor b = Tensor::Random({70, 90}, rng);
  Tensor baseline;
  {
    ScopedNumThreads one(1);
    baseline = MatMul(a, b);
  }
  for (int threads : {2, 3, 5, 8}) {
    ScopedNumThreads t(threads);
    Tensor got = MatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(got, baseline)) << "threads=" << threads;
    Tensor repeat = MatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(repeat, baseline)) << "repeat, threads=" << threads;
  }
}

TEST(BackendTest, DetectorBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(13);
  Tensor t = Tensor::RandomSparse({97, 61}, 0.85, rng);
  SparsityDetector detector(/*shuffle_seed=*/5);
  std::vector<int64_t> baseline;
  {
    ScopedNumThreads one(1);
    baseline = detector.Detect(t, MicroTileShape{4, 4}).offsets;
  }
  for (int threads : {2, 4, 9}) {
    ScopedNumThreads tc(threads);
    EXPECT_EQ(detector.Detect(t, MicroTileShape{4, 4}).offsets, baseline)
        << "threads=" << threads;
  }
}

TEST(BackendTest, SReadSWriteMicroTilesEmptyIndex) {
  Tensor zeros = Tensor::Zeros({24, 18});
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(zeros, MicroTileShape{4, 6});
  EXPECT_EQ(index.NumNonZero(), 0);
  Tensor packed = SReadMicroTiles(zeros, index);
  EXPECT_EQ(packed.dim(0), 0);
  Tensor dst = Tensor::Zeros({24, 18});
  SWriteMicroTiles(packed, index, &dst);  // no-op, must not crash
  EXPECT_EQ(dst.CountNonZero(), 0);
}

TEST(BackendTest, SReadSWriteMicroTilesFullDenseIndex) {
  Rng rng(17);
  Tensor t = Tensor::Random({20, 30}, rng, 0.5f, 1.5f);  // strictly nonzero
  SparsityDetector detector;
  for (const MicroTileShape micro :
       {MicroTileShape{4, 6}, MicroTileShape{3, 7}, MicroTileShape{1, 30}, MicroTileShape{20, 1}}) {
    MicroTileIndex index = detector.Detect(t, micro);
    EXPECT_EQ(index.NumNonZero(), index.TotalMicroTiles()) << micro.ToString();
    Tensor dst = Tensor::Zeros({20, 30});
    SWriteMicroTiles(SReadMicroTiles(t, index), index, &dst);
    EXPECT_TRUE(BitwiseEqual(dst, t)) << micro.ToString();
  }
}

TEST(BackendTest, SReadMicroTilesBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(19);
  Tensor t = Tensor::RandomSparse({50, 46}, 0.5, rng);
  SparsityDetector detector(/*shuffle_seed=*/3);
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  Tensor baseline;
  {
    ScopedNumThreads one(1);
    baseline = SReadMicroTiles(t, index);
  }
  for (int threads : {2, 6}) {
    ScopedNumThreads tc(threads);
    EXPECT_TRUE(BitwiseEqual(SReadMicroTiles(t, index), baseline)) << "threads=" << threads;
  }
}

TEST(BackendTest, PitMatmulsMatchReferenceBackend) {
  Rng rng(23);
  // 25% row density: rows are nonzero with probability 0.25.
  Tensor a = Tensor::RandomBlockSparse(96, 64, 1, 64, 0.75, rng);
  Tensor b = Tensor::Random({64, 48}, rng);
  SparsityDetector detector;
  Tensor blocked_row, blocked_k, blocked_micro, ref_row, ref_k, ref_micro;
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    blocked_row = PitRowGatherMatmul(a, b, detector);
    blocked_k = PitKGatherMatmul(a, b, 32, detector);
    blocked_micro = PitMicroTileMatmul(a, b, MicroTileShape{8, 8}, detector);
  }
  {
    ScopedBackend guard(ComputeBackend::kReference);
    ref_row = PitRowGatherMatmul(a, b, detector);
    ref_k = PitKGatherMatmul(a, b, 32, detector);
    ref_micro = PitMicroTileMatmul(a, b, MicroTileShape{8, 8}, detector);
  }
  EXPECT_TRUE(AllClose(blocked_row, ref_row));
  EXPECT_TRUE(AllClose(blocked_k, ref_k));
  EXPECT_TRUE(AllClose(blocked_micro, ref_micro));
}

TEST(BackendTest, BatchRowGatherMatchesReferenceAndIsDeterministic) {
  Rng rng(29);
  Tensor a = Tensor::Random({4, 22, 18}, rng);
  // Zero out some rows to create gather opportunities.
  for (int64_t s = 0; s < 4; ++s) {
    for (int64_t i = 0; i < 22; i += 3) {
      for (int64_t p = 0; p < 18; ++p) {
        a.At(s, i, p) = 0.0f;
      }
    }
  }
  Tensor b = Tensor::Random({4, 18, 26}, rng);
  SparsityDetector detector;
  Tensor blocked, reference;
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    blocked = PitBatchRowGatherMatmul(a, b, detector);
    ScopedNumThreads one(1);
    Tensor single = PitBatchRowGatherMatmul(a, b, detector);
    EXPECT_TRUE(BitwiseEqual(blocked, single));
  }
  {
    ScopedBackend guard(ComputeBackend::kReference);
    reference = PitBatchRowGatherMatmul(a, b, detector);
  }
  EXPECT_TRUE(AllClose(blocked, reference));
}

TEST(BackendTest, ElementwiseOpsBitwiseStableAcrossThreadCounts) {
  Rng rng(31);
  Tensor a = Tensor::Random({333, 77}, rng);
  Tensor b = Tensor::Random({333, 77}, rng);
  Tensor add1, mul1, gelu1;
  {
    ScopedNumThreads one(1);
    add1 = Add(a, b);
    mul1 = Mul(a, b);
    gelu1 = Gelu(a);
  }
  {
    ScopedNumThreads many(7);
    EXPECT_TRUE(BitwiseEqual(Add(a, b), add1));
    EXPECT_TRUE(BitwiseEqual(Mul(a, b), mul1));
    EXPECT_TRUE(BitwiseEqual(Gelu(a), gelu1));
  }
}

TEST(BackendTest, ServingGridMatchesIndividualRuns) {
  CostModel model(V100());
  std::vector<ServingScenario> grid;
  for (Engine e : {Engine::kPyTorch, Engine::kPit}) {
    ServingScenario sc;
    sc.engine = e;
    sc.config.num_requests = 120;
    sc.config.arrival_rate_rps = 200.0;
    sc.seed = 42;
    grid.push_back(sc);
  }
  const auto dist = DatasetSeqLens("mnli");
  std::vector<ServingStats> parallel = SimulateServingGrid(model, BertBase(), dist, grid);
  ASSERT_EQ(parallel.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    Rng rng(grid[i].seed);
    ServingStats expected =
        SimulateServing(model, grid[i].engine, BertBase(), dist, grid[i].config, rng);
    EXPECT_DOUBLE_EQ(parallel[i].p99_latency_us, expected.p99_latency_us);
    EXPECT_DOUBLE_EQ(parallel[i].mean_latency_us, expected.mean_latency_us);
    EXPECT_EQ(parallel[i].batches, expected.batches);
  }
}

}  // namespace
}  // namespace pit
