// Backend equivalence tests: every blocked/parallel kernel is differential-
// tested against the scalar ReferenceBackend, across the shapes that stress
// the tiling (1xN, Nx1, non-multiples of the register tile, empty and
// full-dense micro-tile indexes), plus bitwise determinism across thread
// counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/gemm_microkernel.h"
#include "pit/common/parallel_for.h"
#include "pit/core/batched_kernel.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.bytes())) == 0;
}

struct MatmulShape {
  int64_t m, k, n;
};

const std::vector<MatmulShape>& OddShapes() {
  // 1xN, Nx1, scalar-ish, non-multiples of the 4x16 register tile, exact
  // multiples, and a k=0 degenerate.
  static const std::vector<MatmulShape> shapes = {
      {1, 37, 53},  {41, 29, 1}, {1, 1, 1},   {17, 33, 29}, {64, 64, 64},
      {5, 300, 2},  {3, 1, 19},  {128, 7, 31}, {65, 128, 47}, {4, 0, 9},
  };
  return shapes;
}

TEST(BackendTest, MatMulMatchesReferenceOnOddShapes) {
  for (const auto& s : OddShapes()) {
    Rng rng(100 + s.m + s.k + s.n);
    Tensor a = Tensor::Random({s.m, s.k}, rng);
    Tensor b = Tensor::Random({s.k, s.n}, rng);
    Tensor blocked, reference;
    {
      ScopedBackend guard(ComputeBackend::kBlocked);
      blocked = MatMul(a, b);
    }
    {
      ScopedBackend guard(ComputeBackend::kReference);
      reference = MatMul(a, b);
    }
    EXPECT_TRUE(AllClose(blocked, reference))
        << "shape " << s.m << "x" << s.k << "x" << s.n
        << " maxdiff " << MaxAbsDiff(blocked, reference);
  }
}

TEST(BackendTest, GemmPackAIsBitwiseIdenticalOnTallGatedShape) {
  // 1024x192x2048 is the smallest shape the A-packing gates admit (tall,
  // reuse band, deep k); the packed path must be bit-for-bit the unpacked
  // one, including the ragged trailing row block when m is not a multiple
  // of 4 — so also probe 1027 rows.
  for (const int64_t m : {int64_t{1024}, int64_t{1027}}) {
    Rng rng(300 + m);
    Tensor a = Tensor::Random({m, 2048}, rng);
    Tensor b = Tensor::Random({2048, 192}, rng);
    Tensor packed, unpacked;
    {
      ScopedGemmPackA pack(true);
      packed = MatMul(a, b);
    }
    {
      ScopedGemmPackA pack(false);
      unpacked = MatMul(a, b);
    }
    ASSERT_EQ(std::memcmp(packed.data(), unpacked.data(),
                          static_cast<size_t>(packed.size()) * sizeof(float)),
              0)
        << "packed-A GEMM diverged at m=" << m;
  }
}

TEST(BackendTest, GemmFusedReluEpilogueIsBitwiseExact) {
  // The fused relu epilogue must equal the separate matmul(+bias) -> relu
  // composition bit for bit, under both backends and across thread counts.
  Rng rng(400);
  Tensor a = Tensor::Random({37, 29}, rng);
  Tensor b = Tensor::Random({29, 41}, rng);
  Tensor bias = Tensor::Random({41}, rng);
  for (const ComputeBackend backend : {ComputeBackend::kBlocked, ComputeBackend::kReference}) {
    ScopedBackend guard(backend);
    for (int threads : {1, 4}) {
      ScopedNumThreads t(threads);
      Tensor fused({37, 41});
      MatMulBiasReluInto(a, b, bias, fused);
      Tensor expect = Relu(MatMulBias(a, b, bias));
      ASSERT_EQ(std::memcmp(fused.data(), expect.data(),
                            static_cast<size_t>(fused.size()) * sizeof(float)),
                0);
      Tensor fused_nobias({37, 41});
      MatMulReluInto(a, b, fused_nobias);
      Tensor expect_nobias = Relu(MatMul(a, b));
      ASSERT_EQ(std::memcmp(fused_nobias.data(), expect_nobias.data(),
                            static_cast<size_t>(fused_nobias.size()) * sizeof(float)),
                0);
    }
  }
}

TEST(BackendTest, MatMulBiasFusedEpilogueMatchesReference) {
  for (const auto& s : OddShapes()) {
    Rng rng(200 + s.m + s.k + s.n);
    Tensor a = Tensor::Random({s.m, s.k}, rng);
    Tensor b = Tensor::Random({s.k, s.n}, rng);
    Tensor bias = Tensor::Random({s.n}, rng);
    Tensor blocked, reference;
    {
      ScopedBackend guard(ComputeBackend::kBlocked);
      blocked = MatMulBias(a, b, bias);
    }
    {
      ScopedBackend guard(ComputeBackend::kReference);
      reference = MatMulBias(a, b, bias);
    }
    EXPECT_TRUE(AllClose(blocked, reference))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BackendTest, BatchMatMulMatchesReference) {
  Rng rng(7);
  Tensor a = Tensor::Random({5, 33, 29}, rng);
  Tensor b = Tensor::Random({5, 29, 17}, rng);
  Tensor blocked, reference;
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    blocked = BatchMatMul(a, b);
  }
  {
    ScopedBackend guard(ComputeBackend::kReference);
    reference = BatchMatMul(a, b);
  }
  EXPECT_TRUE(AllClose(blocked, reference));
}

TEST(BackendTest, MatMulBitwiseIdenticalAcrossThreadCounts) {
  ScopedBackend guard(ComputeBackend::kBlocked);
  Rng rng(11);
  Tensor a = Tensor::Random({130, 70}, rng);
  Tensor b = Tensor::Random({70, 90}, rng);
  Tensor baseline;
  {
    ScopedNumThreads one(1);
    baseline = MatMul(a, b);
  }
  for (int threads : {2, 3, 5, 8}) {
    ScopedNumThreads t(threads);
    Tensor got = MatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(got, baseline)) << "threads=" << threads;
    Tensor repeat = MatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(repeat, baseline)) << "repeat, threads=" << threads;
  }
}

TEST(BackendTest, DetectorBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(13);
  Tensor t = Tensor::RandomSparse({97, 61}, 0.85, rng);
  SparsityDetector detector(/*shuffle_seed=*/5);
  std::vector<int64_t> baseline;
  {
    ScopedNumThreads one(1);
    baseline = detector.Detect(t, MicroTileShape{4, 4}).offsets;
  }
  for (int threads : {2, 4, 9}) {
    ScopedNumThreads tc(threads);
    EXPECT_EQ(detector.Detect(t, MicroTileShape{4, 4}).offsets, baseline)
        << "threads=" << threads;
  }
}

TEST(BackendTest, SReadSWriteMicroTilesEmptyIndex) {
  Tensor zeros = Tensor::Zeros({24, 18});
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(zeros, MicroTileShape{4, 6});
  EXPECT_EQ(index.NumNonZero(), 0);
  Tensor packed = SReadMicroTiles(zeros, index);
  EXPECT_EQ(packed.dim(0), 0);
  Tensor dst = Tensor::Zeros({24, 18});
  SWriteMicroTiles(packed, index, &dst);  // no-op, must not crash
  EXPECT_EQ(dst.CountNonZero(), 0);
}

TEST(BackendTest, SReadSWriteMicroTilesFullDenseIndex) {
  Rng rng(17);
  Tensor t = Tensor::Random({20, 30}, rng, 0.5f, 1.5f);  // strictly nonzero
  SparsityDetector detector;
  for (const MicroTileShape micro :
       {MicroTileShape{4, 6}, MicroTileShape{3, 7}, MicroTileShape{1, 30}, MicroTileShape{20, 1}}) {
    MicroTileIndex index = detector.Detect(t, micro);
    EXPECT_EQ(index.NumNonZero(), index.TotalMicroTiles()) << micro.ToString();
    Tensor dst = Tensor::Zeros({20, 30});
    SWriteMicroTiles(SReadMicroTiles(t, index), index, &dst);
    EXPECT_TRUE(BitwiseEqual(dst, t)) << micro.ToString();
  }
}

TEST(BackendTest, SReadMicroTilesBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(19);
  Tensor t = Tensor::RandomSparse({50, 46}, 0.5, rng);
  SparsityDetector detector(/*shuffle_seed=*/3);
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  Tensor baseline;
  {
    ScopedNumThreads one(1);
    baseline = SReadMicroTiles(t, index);
  }
  for (int threads : {2, 6}) {
    ScopedNumThreads tc(threads);
    EXPECT_TRUE(BitwiseEqual(SReadMicroTiles(t, index), baseline)) << "threads=" << threads;
  }
}

TEST(BackendTest, PitMatmulsMatchReferenceBackend) {
  Rng rng(23);
  // 25% row density: rows are nonzero with probability 0.25.
  Tensor a = Tensor::RandomBlockSparse(96, 64, 1, 64, 0.75, rng);
  Tensor b = Tensor::Random({64, 48}, rng);
  SparsityDetector detector;
  Tensor blocked_row, blocked_k, blocked_micro, ref_row, ref_k, ref_micro;
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    blocked_row = PitRowGatherMatmul(a, b, detector);
    blocked_k = PitKGatherMatmul(a, b, 32, detector);
    blocked_micro = PitMicroTileMatmul(a, b, MicroTileShape{8, 8}, detector);
  }
  {
    ScopedBackend guard(ComputeBackend::kReference);
    ref_row = PitRowGatherMatmul(a, b, detector);
    ref_k = PitKGatherMatmul(a, b, 32, detector);
    ref_micro = PitMicroTileMatmul(a, b, MicroTileShape{8, 8}, detector);
  }
  EXPECT_TRUE(AllClose(blocked_row, ref_row));
  EXPECT_TRUE(AllClose(blocked_k, ref_k));
  EXPECT_TRUE(AllClose(blocked_micro, ref_micro));
}

TEST(BackendTest, BatchRowGatherMatchesReferenceAndIsDeterministic) {
  Rng rng(29);
  Tensor a = Tensor::Random({4, 22, 18}, rng);
  // Zero out some rows to create gather opportunities.
  for (int64_t s = 0; s < 4; ++s) {
    for (int64_t i = 0; i < 22; i += 3) {
      for (int64_t p = 0; p < 18; ++p) {
        a.At(s, i, p) = 0.0f;
      }
    }
  }
  Tensor b = Tensor::Random({4, 18, 26}, rng);
  SparsityDetector detector;
  Tensor blocked, reference;
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    blocked = PitBatchRowGatherMatmul(a, b, detector);
    ScopedNumThreads one(1);
    Tensor single = PitBatchRowGatherMatmul(a, b, detector);
    EXPECT_TRUE(BitwiseEqual(blocked, single));
  }
  {
    ScopedBackend guard(ComputeBackend::kReference);
    reference = PitBatchRowGatherMatmul(a, b, detector);
  }
  EXPECT_TRUE(AllClose(blocked, reference));
}

TEST(BackendTest, ElementwiseOpsBitwiseStableAcrossThreadCounts) {
  Rng rng(31);
  Tensor a = Tensor::Random({333, 77}, rng);
  Tensor b = Tensor::Random({333, 77}, rng);
  Tensor add1, mul1, gelu1;
  {
    ScopedNumThreads one(1);
    add1 = Add(a, b);
    mul1 = Mul(a, b);
    gelu1 = Gelu(a);
  }
  {
    ScopedNumThreads many(7);
    EXPECT_TRUE(BitwiseEqual(Add(a, b), add1));
    EXPECT_TRUE(BitwiseEqual(Mul(a, b), mul1));
    EXPECT_TRUE(BitwiseEqual(Gelu(a), gelu1));
  }
}

// ---- ISA tier differentials -------------------------------------------------
//
// Every vectorized kernel against the scalar blocked tier (the oracle), split
// by contract: kernels that contract with FMA or re-associate a reduction
// (GEMM epilogue paths, softmax's polynomial exp, layernorm's vector sums)
// are tolerance- and ULP-bounded; order-preserving kernels (relu/add/scale,
// the detector's exact predicate scan, row gathers) must match bit for bit.
// Each comparison sweeps worker counts — within a fixed tier results must
// also be bitwise thread-invariant.

// Monotonic-integer ULP distance; large sentinel when signs differ and the
// values are not both (near-)zero.
int64_t UlpDiff(float a, float b) {
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float bits onto a monotonic integer line (+0 and
  // -0 coincide), then the ULP distance is a plain difference.
  const int64_t ma = ia >= 0 ? ia : (int64_t{-1} << 31) - ia;
  const int64_t mb = ib >= 0 ? ib : (int64_t{-1} << 31) - ib;
  return ma > mb ? ma - mb : mb - ma;
}

int64_t MaxUlpDiff(const Tensor& a, const Tensor& b) {
  int64_t max_ulp = 0;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_ulp = std::max(max_ulp, UlpDiff(a[i], b[i]));
  }
  return max_ulp;
}

// Max ULP distance over elements where both magnitudes clear `floor`: near
// zero a tiny absolute difference spans enormous ULP counts (the exponent
// ladder compresses), so reduction-reassociating kernels bound ULPs away
// from zero and absolute error near it.
int64_t MaxUlpDiffAbove(const Tensor& a, const Tensor& b, float floor) {
  int64_t max_ulp = 0;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i]) >= floor && std::abs(b[i]) >= floor) {
      max_ulp = std::max(max_ulp, UlpDiff(a[i], b[i]));
    }
  }
  return max_ulp;
}

bool SimdTierAvailable() { return DetectedIsa() != IsaTier::kScalar; }

// Cross-tier ULP distance is NOT bounded for GEMM: the SIMD tier always
// contracts a*b+c into fma, while the scalar tier only does when the compiler
// emits it (-march=native builds; portable -DPIT_NATIVE_ARCH=OFF builds
// round the product first), and cancellation can stretch that half-ULP gap
// across the whole exponent ladder. The build-invariant contract is the
// classic forward-error envelope instead: every tier's output must sit
// within ~k*eps * sum_p |a_ip * b_pj| of a float64-accumulated oracle
// (relu is 1-Lipschitz, so the same tolerance survives the epilogue).
struct GemmOracle {
  std::vector<double> value;  // row-major [m, n], float64 accumulation
  std::vector<double> tol;    // per-element error envelope
  int64_t m = 0, n = 0;
};

GemmOracle MakeGemmOracle(const Tensor& a, const Tensor& b, const Tensor* bias, bool relu) {
  GemmOracle o;
  o.m = a.shape()[0];
  o.n = b.shape()[1];
  const int64_t k = a.shape()[1];
  constexpr double kEps = 1.19209290e-07;  // float32 machine epsilon
  o.value.resize(o.m * o.n);
  o.tol.resize(o.m * o.n);
  for (int64_t i = 0; i < o.m; ++i) {
    for (int64_t j = 0; j < o.n; ++j) {
      double acc = 0.0;
      double abs_acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double prod = static_cast<double>(a.At(i, p)) * static_cast<double>(b.At(p, j));
        acc += prod;
        abs_acc += std::abs(prod);
      }
      if (bias != nullptr) {
        acc += static_cast<double>((*bias)[j]);
        abs_acc += std::abs(static_cast<double>((*bias)[j]));
      }
      if (relu && acc < 0.0) {
        acc = 0.0;
      }
      o.value[i * o.n + j] = acc;
      o.tol[i * o.n + j] = 2.0 * static_cast<double>(k + 2) * kEps * abs_acc + 1e-12;
    }
  }
  return o;
}

void ExpectWithinGemmEnvelope(const Tensor& got, const GemmOracle& o, const char* what) {
  int64_t worst = -1;
  double worst_ratio = 0.0;
  for (int64_t i = 0; i < o.m * o.n; ++i) {
    const double err = std::abs(static_cast<double>(got[i]) - o.value[i]);
    const double ratio = err / o.tol[i];
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst = i;
    }
  }
  EXPECT_LE(worst_ratio, 1.0) << what << ": element " << worst << " error "
                              << std::abs(static_cast<double>(got[worst]) - o.value[worst])
                              << " exceeds envelope " << o.tol[worst];
}

// Runs `fn` under the scalar tier and under the detected SIMD tier (blocked
// backend both times) and hands both results to `check`. Also asserts the
// SIMD result is bitwise identical across worker counts: within a fixed tier
// the kernels must be deterministic, only *across* tiers may values move.
template <typename Fn, typename Check>
void CompareTiers(Fn&& fn, Check&& check) {
  ScopedBackend guard(ComputeBackend::kBlocked);
  Tensor scalar_result;
  {
    ScopedIsa tier(IsaTier::kScalar);
    ScopedNumThreads one(1);
    scalar_result = fn();
  }
  Tensor simd_result;
  {
    ScopedIsa tier(DetectedIsa());
    {
      ScopedNumThreads one(1);
      simd_result = fn();
    }
    for (int threads : {4, 7}) {
      ScopedNumThreads t(threads);
      Tensor repeat = fn();
      ASSERT_TRUE(BitwiseEqual(repeat, simd_result))
          << "SIMD tier result not thread-invariant at threads=" << threads;
    }
  }
  check(scalar_result, simd_result);
}

TEST(IsaTierTest, GemmMatchesScalarTierWithinEnvelope) {
  if (!SimdTierAvailable()) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  // Odd shapes stress the ragged n tail (the scalar edge kernel) and ragged
  // m; both tiers run the same ascending-p fma chain per element, so the
  // only differences are scalar-vs-vector contraction artifacts.
  for (const auto& s : OddShapes()) {
    Rng rng(500 + s.m + s.k + s.n);
    Tensor a = Tensor::Random({s.m, s.k}, rng);
    Tensor b = Tensor::Random({s.k, s.n}, rng);
    const GemmOracle oracle = MakeGemmOracle(a, b, nullptr, false);
    CompareTiers([&] { return MatMul(a, b); }, [&](const Tensor& sc, const Tensor& sd) {
      EXPECT_TRUE(AllClose(sc, sd)) << "shape " << s.m << "x" << s.k << "x" << s.n;
      ExpectWithinGemmEnvelope(sc, oracle, "scalar tier");
      ExpectWithinGemmEnvelope(sd, oracle, "simd tier");
    });
  }
}

TEST(IsaTierTest, GemmFusedEpiloguesMatchScalarTierWithinEnvelope) {
  if (!SimdTierAvailable()) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  Rng rng(510);
  Tensor a = Tensor::Random({65, 100}, rng);
  Tensor b = Tensor::Random({100, 47}, rng);
  Tensor bias = Tensor::Random({47}, rng);
  const GemmOracle bias_oracle = MakeGemmOracle(a, b, &bias, false);
  CompareTiers([&] { return MatMulBias(a, b, bias); },
               [&](const Tensor& sc, const Tensor& sd) {
                 EXPECT_TRUE(AllClose(sc, sd));
                 ExpectWithinGemmEnvelope(sc, bias_oracle, "scalar tier bias");
                 ExpectWithinGemmEnvelope(sd, bias_oracle, "simd tier bias");
               });
  const GemmOracle relu_oracle = MakeGemmOracle(a, b, &bias, true);
  CompareTiers(
      [&] {
        Tensor fused({65, 47});
        MatMulBiasReluInto(a, b, bias, fused);
        return fused;
      },
      [&](const Tensor& sc, const Tensor& sd) {
        EXPECT_TRUE(AllClose(sc, sd));
        ExpectWithinGemmEnvelope(sc, relu_oracle, "scalar tier bias-relu");
        ExpectWithinGemmEnvelope(sd, relu_oracle, "simd tier bias-relu");
      });
  // Deep-k tall shape that trips the packed-A path under both tiers.
  Rng rng2(511);
  Tensor ta = Tensor::Random({1027, 2048}, rng2);
  Tensor tb = Tensor::Random({2048, 192}, rng2);
  const GemmOracle tall_oracle = MakeGemmOracle(ta, tb, nullptr, false);
  CompareTiers([&] { return MatMul(ta, tb); }, [&](const Tensor& sc, const Tensor& sd) {
    // k=2048 accumulates enough contraction drift in portable builds that
    // the default AllClose tolerance is too tight; the oracle envelope
    // below is the rigorous per-element bound.
    EXPECT_TRUE(AllClose(sc, sd, 1e-3f, 1e-4f));
    ExpectWithinGemmEnvelope(sc, tall_oracle, "scalar tier packed-A");
    ExpectWithinGemmEnvelope(sd, tall_oracle, "simd tier packed-A");
  });
}

TEST(IsaTierTest, SoftmaxMatchesScalarTierWithinUlps) {
  if (!SimdTierAvailable()) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  // Ragged row lengths (not multiples of 8/16) plus a masked case whose rows
  // mix unmasked spans, fully-masked rows, and span tails.
  for (const int64_t n : {int64_t{7}, int64_t{37}, int64_t{129}, int64_t{256}}) {
    Rng rng(520 + n);
    Tensor t = Tensor::Random({33, n}, rng, -8.0f, 8.0f);
    CompareTiers([&] { return Softmax(t); }, [&](const Tensor& sc, const Tensor& sd) {
      EXPECT_TRUE(AllClose(sc, sd, 1e-5f, 1e-7f)) << "n=" << n;
      EXPECT_LE(MaxUlpDiff(sc, sd), 64) << "n=" << n;
    });
    Tensor mask = Tensor::RandomSparse({33, n}, 0.5, rng);
    for (int64_t i = 0; i < mask.size(); ++i) {
      mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
    }
    for (int64_t j = 0; j < n; ++j) {
      mask.At(4, j) = 0.0f;  // one fully-masked row: zeros under every tier
    }
    CompareTiers([&] { return Softmax(t, &mask); }, [&](const Tensor& sc, const Tensor& sd) {
      EXPECT_TRUE(AllClose(sc, sd, 1e-5f, 1e-7f)) << "masked n=" << n;
      EXPECT_LE(MaxUlpDiff(sc, sd), 64) << "masked n=" << n;
      for (int64_t j = 0; j < n; ++j) {
        EXPECT_EQ(sd.At(4, j), 0.0f);
      }
    });
  }
}

TEST(IsaTierTest, LayerNormMatchesScalarTierWithinTolerance) {
  if (!SimdTierAvailable()) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  // The SIMD tier re-associates the mean/variance reductions (8-lane partial
  // sums), so this is the one kernel family where the scalar chain genuinely
  // differs — tolerance-checked, with a loose ULP ceiling to catch gross
  // divergence.
  for (const int64_t n : {int64_t{13}, int64_t{100}, int64_t{768}}) {
    Rng rng(530 + n);
    Tensor t = Tensor::Random({21, n}, rng);
    Tensor gamma = Tensor::Random({n}, rng);
    Tensor beta = Tensor::Random({n}, rng);
    CompareTiers([&] { return LayerNorm(t, gamma, beta); },
                 [&](const Tensor& sc, const Tensor& sd) {
                   EXPECT_TRUE(AllClose(sc, sd, 1e-4f, 1e-5f)) << "n=" << n;
                   EXPECT_LE(MaxUlpDiffAbove(sc, sd, 1e-3f), 4096) << "n=" << n;
                 });
  }
}

TEST(IsaTierTest, OrderPreservingKernelsBitwiseEqualScalarTier) {
  if (!SimdTierAvailable()) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  // relu/add/scale vectorize element-for-element with no contraction or
  // reordering: the SIMD tier must be bit-exact against scalar, including the
  // ragged vector tails.
  Rng rng(540);
  Tensor a = Tensor::Random({37, 101}, rng, -2.0f, 2.0f);
  Tensor b = Tensor::Random({37, 101}, rng);
  CompareTiers([&] { return Relu(a); }, [&](const Tensor& sc, const Tensor& sd) {
    EXPECT_TRUE(BitwiseEqual(sc, sd));
  });
  CompareTiers([&] { return Add(a, b); }, [&](const Tensor& sc, const Tensor& sd) {
    EXPECT_TRUE(BitwiseEqual(sc, sd));
  });
  CompareTiers([&] { return Scale(a, 0.37f); }, [&](const Tensor& sc, const Tensor& sd) {
    EXPECT_TRUE(BitwiseEqual(sc, sd));
  });
}

TEST(IsaTierTest, DetectorAndRowGathersBitwiseEqualScalarTier) {
  if (!SimdTierAvailable()) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  ScopedBackend guard(ComputeBackend::kBlocked);
  Rng rng(550);
  // Span widths >= 16 engage the SIMD scan; the predicate is exact either
  // way, so the detected offsets (including the deterministic shuffle) must
  // be identical. 201 columns leaves a ragged 9-wide final span.
  Tensor t = Tensor::RandomSparse({64, 201}, 0.9, rng);
  SparsityDetector detector(/*shuffle_seed=*/11);
  std::vector<int64_t> scalar_offsets, simd_offsets;
  {
    ScopedIsa tier(IsaTier::kScalar);
    scalar_offsets = detector.Detect(t, MicroTileShape{1, 32}).offsets;
  }
  {
    ScopedIsa tier(DetectedIsa());
    simd_offsets = detector.Detect(t, MicroTileShape{1, 32}).offsets;
  }
  EXPECT_EQ(simd_offsets, scalar_offsets);

  // Row gather/scatter round trip: pure copies, bitwise across tiers.
  std::vector<int64_t> row_ids{0, 3, 17, 18, 40, 63};
  CompareTiers([&] { return SReadRows(t, row_ids); },
               [&](const Tensor& sc, const Tensor& sd) {
                 EXPECT_TRUE(BitwiseEqual(sc, sd));
               });
  Tensor packed = SReadRows(t, row_ids);
  CompareTiers(
      [&] {
        Tensor dst = Tensor::Zeros({64, 201});
        SWriteRows(packed, row_ids, &dst);
        return dst;
      },
      [&](const Tensor& sc, const Tensor& sd) { EXPECT_TRUE(BitwiseEqual(sc, sd)); });
}

TEST(IsaTierTest, SoftmaxMaskSkipDifferential) {
  // Span skipping must be invisible in the results at any tier: exactly so at
  // the scalar tier (a masked column contributes the identity to both the max
  // and the sum), tolerance/ULP at a SIMD tier (the skip path runs the
  // span-relative vector kernels, the unskipped path runs the scalar row
  // oracle).
  ScopedBackend guard(ComputeBackend::kBlocked);
  Rng rng(560);
  const int64_t tokens = 96;
  Tensor t = Tensor::Random({tokens, tokens}, rng, -6.0f, 6.0f);
  // Block-diagonal ragged-serving mask: spans of 31 + 33 + 32 tokens.
  Tensor mask = Tensor::Zeros({tokens, tokens});
  const int64_t lens[] = {31, 33, 32};
  int64_t base = 0;
  for (const int64_t len : lens) {
    for (int64_t i = base; i < base + len; ++i) {
      for (int64_t j = base; j < base + len; ++j) {
        mask.At(i, j) = 1.0f;
      }
    }
    base += len;
  }
  for (const IsaTier tier : {IsaTier::kScalar, DetectedIsa()}) {
    ScopedIsa isa(tier);
    Tensor skip_on, skip_off;
    {
      ScopedSoftmaxMaskSkip skip(true);
      skip_on = Softmax(t, &mask);
    }
    {
      ScopedSoftmaxMaskSkip skip(false);
      skip_off = Softmax(t, &mask);
    }
    if (tier == IsaTier::kScalar) {
      EXPECT_TRUE(BitwiseEqual(skip_on, skip_off));
    } else {
      EXPECT_TRUE(AllClose(skip_on, skip_off, 1e-5f, 1e-7f));
      EXPECT_LE(MaxUlpDiff(skip_on, skip_off), 64);
    }
    // Off-diagonal (masked) entries are exact zeros under every path.
    EXPECT_EQ(skip_on.At(0, 40), 0.0f);
    EXPECT_EQ(skip_on.At(80, 0), 0.0f);
  }
}

TEST(IsaTierTest, PlannedStackBitwiseInvariantAcrossSchedulersWithinTier) {
  // Within a fixed ISA tier, a planned transformer forward must be bitwise
  // identical across plan schedulers x worker counts x serving streams — the
  // PR 5/6 determinism contracts may not depend on which tier computed the
  // kernels.
  Rng wr(570);
  PlannedTransformerStack stack(/*layers=*/2, /*hidden=*/64, /*heads=*/4, /*ffn_hidden=*/128,
                                wr);
  Rng rr(571);
  Tensor x = Tensor::Random({48, 64}, rr);
  for (const IsaTier tier : {IsaTier::kScalar, DetectedIsa()}) {
    ScopedIsa isa(tier);
    Tensor baseline;
    {
      ScopedPlanSched sched(PlanSched::kSequential);
      ScopedNumThreads one(1);
      baseline = stack.Forward(x);
    }
    for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
      ScopedPlanSched s(sched);
      for (int threads : {1, 4, 7}) {
        ScopedNumThreads tc(threads);
        EXPECT_TRUE(BitwiseEqual(stack.Forward(x), baseline))
            << "tier=" << IsaName(tier) << " sched=" << (sched == PlanSched::kWavefront)
            << " threads=" << threads;
      }
    }
    // Multi-stream serving of identical requests reproduces the same bits.
    std::vector<ServeRequest> requests(6);
    for (auto& req : requests) {
      req.x = x;
    }
    std::vector<Tensor> single_stream;
    {
      ServingEngineOptions options;
      options.num_streams = 1;
      ServingEngine engine(stack, options);
      single_stream = engine.Serve(requests);
      EXPECT_TRUE(BitwiseEqual(single_stream[0], baseline)) << "tier=" << IsaName(tier);
    }
    {
      ServingEngineOptions options;
      options.num_streams = 3;
      ServingEngine engine(stack, options);
      std::vector<Tensor> multi = engine.Serve(requests);
      for (size_t i = 0; i < multi.size(); ++i) {
        EXPECT_TRUE(BitwiseEqual(multi[i], single_stream[i]))
            << "tier=" << IsaName(tier) << " request " << i;
      }
    }
  }
}

TEST(BackendTest, ServingGridMatchesIndividualRuns) {
  CostModel model(V100());
  std::vector<ServingScenario> grid;
  for (Engine e : {Engine::kPyTorch, Engine::kPit}) {
    ServingScenario sc;
    sc.engine = e;
    sc.config.num_requests = 120;
    sc.config.arrival_rate_rps = 200.0;
    sc.seed = 42;
    grid.push_back(sc);
  }
  const auto dist = DatasetSeqLens("mnli");
  std::vector<ServingStats> parallel = SimulateServingGrid(model, BertBase(), dist, grid);
  ASSERT_EQ(parallel.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    Rng rng(grid[i].seed);
    ServingStats expected =
        SimulateServing(model, grid[i].engine, BertBase(), dist, grid[i].config, rng);
    EXPECT_DOUBLE_EQ(parallel[i].p99_latency_us, expected.p99_latency_us);
    EXPECT_DOUBLE_EQ(parallel[i].mean_latency_us, expected.mean_latency_us);
    EXPECT_EQ(parallel[i].batches, expected.batches);
  }
}

}  // namespace
}  // namespace pit
