#include <gtest/gtest.h>

#include "pit/core/sparse_ops.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

// ---- convolution ------------------------------------------------------------

Tensor ZeroChannels(Tensor input, std::initializer_list<int64_t> dead) {
  const int64_t c = input.dim(1), hw = input.dim(2) * input.dim(3);
  for (int64_t b = 0; b < input.dim(0); ++b) {
    for (int64_t ch : dead) {
      float* base = input.data() + (b * c + ch) * hw;
      std::fill(base, base + hw, 0.0f);
    }
  }
  return input;
}

TEST(ConvSparseTest, LiveInputChannelsDetected) {
  Rng rng(1);
  Tensor input = ZeroChannels(Tensor::Random({2, 6, 5, 5}, rng), {1, 4});
  auto live = LiveInputChannels(input);
  EXPECT_EQ(live, (std::vector<int64_t>{0, 2, 3, 5}));
}

TEST(ConvSparseTest, ChannelGatherMatchesDense) {
  Rng rng(2);
  Tensor input = ZeroChannels(Tensor::Random({2, 8, 6, 6}, rng), {0, 3, 5, 6});
  Tensor weight = Tensor::Random({4, 8, 3, 3}, rng);
  EXPECT_TRUE(AllClose(PitChannelGatherConv2D(input, weight), Conv2D(input, weight), 1e-3f,
                       1e-4f));
}

TEST(ConvSparseTest, ChannelGatherAllChannelsDeadIsZero) {
  Tensor input = Tensor::Zeros({1, 4, 5, 5});
  Rng rng(3);
  Tensor weight = Tensor::Random({2, 4, 2, 2}, rng);
  Tensor out = PitChannelGatherConv2D(input, weight);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 4, 4}));
  EXPECT_EQ(out.CountNonZero(), 0);
}

TEST(ConvSparseTest, ChannelGatherDenseInputUnchanged) {
  Rng rng(4);
  Tensor input = Tensor::Random({1, 3, 5, 5}, rng, 0.1f, 1.0f);
  Tensor weight = Tensor::Random({2, 3, 3, 3}, rng);
  EXPECT_EQ(LiveInputChannels(input).size(), 3u);
  EXPECT_TRUE(AllClose(PitChannelGatherConv2D(input, weight), Conv2D(input, weight), 1e-3f,
                       1e-4f));
}

TEST(ConvSparseTest, FilterGatherMatchesDense) {
  Rng rng(5);
  Tensor input = Tensor::Random({2, 4, 6, 6}, rng);
  Tensor weight = Tensor::Random({6, 4, 3, 3}, rng);
  // Kill filters 1 and 4 (pruned).
  const int64_t per = 4 * 3 * 3;
  for (int64_t f : {1, 4}) {
    std::fill(weight.data() + f * per, weight.data() + (f + 1) * per, 0.0f);
  }
  EXPECT_EQ(LiveFilters(weight).size(), 4u);
  Tensor out = PitFilterGatherConv2D(input, weight);
  EXPECT_TRUE(AllClose(out, Conv2D(input, weight), 1e-3f, 1e-4f));
  // Dead filters' output channels are exactly zero.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t y = 0; y < 4; ++y) {
      for (int64_t x = 0; x < 4; ++x) {
        EXPECT_EQ(out[((b * 6 + 1) * 4 + y) * 4 + x], 0.0f);
      }
    }
  }
}

TEST(ConvSparseTest, FilterGatherAllDeadIsZero) {
  Rng rng(6);
  Tensor input = Tensor::Random({1, 2, 4, 4}, rng);
  Tensor weight = Tensor::Zeros({3, 2, 2, 2});
  Tensor out = PitFilterGatherConv2D(input, weight);
  EXPECT_EQ(out.CountNonZero(), 0);
}

// Composition: channel gather then filter gather on a doubly sparse problem.
TEST(ConvSparseTest, ComposedSparsityStillExact) {
  Rng rng(7);
  Tensor input = ZeroChannels(Tensor::Random({1, 6, 6, 6}, rng), {2, 3});
  Tensor weight = Tensor::Random({4, 6, 3, 3}, rng);
  std::fill(weight.data(), weight.data() + 6 * 9, 0.0f);  // kill filter 0
  Tensor ref = Conv2D(input, weight);
  EXPECT_TRUE(AllClose(PitChannelGatherConv2D(input, weight), ref, 1e-3f, 1e-4f));
  EXPECT_TRUE(AllClose(PitFilterGatherConv2D(input, weight), ref, 1e-3f, 1e-4f));
}

// ---- ReduceSum / VectorAdd ----------------------------------------------------

class SparseReduceSweep : public ::testing::TestWithParam<double> {};

TEST_P(SparseReduceSweep, MatchesDenseReduce) {
  const double sparsity = GetParam();
  Rng rng(static_cast<uint64_t>(sparsity * 100) + 11);
  Tensor a = Tensor::RandomSparse({33, 71}, sparsity, rng);
  Tensor ref = ReduceSumAxis1(a);
  for (int64_t micro : {1, 4, 8, 16}) {
    EXPECT_TRUE(AllClose(PitSparseReduceSum(a, micro), ref, 1e-4f, 1e-5f))
        << "micro=" << micro << " sparsity=" << sparsity;
  }
}

INSTANTIATE_TEST_SUITE_P(Sparsities, SparseReduceSweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.0));

TEST(SparseReduceTest, UnorderedAccumulationOrderInvariant) {
  Rng rng(12);
  Tensor a = Tensor::RandomSparse({16, 64}, 0.8, rng);
  Tensor r1 = PitSparseReduceSum(a, 8, SparsityDetector(1));
  Tensor r2 = PitSparseReduceSum(a, 8, SparsityDetector(999));
  EXPECT_TRUE(AllClose(r1, r2, 1e-5f, 1e-6f));
}

TEST(SparseVectorAddTest, MatchesDenseAdd) {
  Rng rng(13);
  for (double s : {0.0, 0.5, 0.95}) {
    Tensor a = Tensor::RandomSparse({257}, s, rng);
    Tensor b = Tensor::RandomSparse({257}, s, rng);
    Tensor ref = Add(a, b);
    EXPECT_TRUE(AllClose(PitSparseVectorAdd(a, b), ref, 1e-5f, 1e-6f)) << s;
  }
}

TEST(SparseVectorAddTest, DisjointSupportsUnionCorrectly) {
  Tensor a = Tensor::Zeros({32});
  Tensor b = Tensor::Zeros({32});
  a[3] = 1.0f;   // micro-tile 0 live in a only
  b[20] = 2.0f;  // micro-tile 2 live in b only
  Tensor c = PitSparseVectorAdd(a, b, 8);
  EXPECT_EQ(c[3], 1.0f);
  EXPECT_EQ(c[20], 2.0f);
  EXPECT_EQ(c.CountNonZero(), 2);
}

}  // namespace
}  // namespace pit
