#include <gtest/gtest.h>

#include "pit/graph/graph.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(GraphBuildTest, ShapesInferred) {
  Rng rng(1);
  Graph g;
  int x = g.AddInput("x", {8, 16});
  int w = g.AddWeight("w", Tensor::Random({16, 4}, rng));
  int y = g.AddMatmul("y", x, w);
  EXPECT_EQ(g.node(y).shape, (Shape{8, 4}));
  EXPECT_EQ(g.node(x).kind, OpKind::kInput);
  EXPECT_EQ(g.size(), 3);
}

TEST(GraphSparsityTest, ReluMarksActivationSparsity) {
  Rng rng(2);
  Graph g = BuildFfnGraph(16, 8, 32, rng);
  // Node order: x, w_up, w_down, up_proj, relu, down_proj.
  const GraphNode& relu = g.node(4);
  EXPECT_EQ(relu.kind, OpKind::kRelu);
  EXPECT_EQ(relu.sparsity, SparsitySource::kActivation);
  EXPECT_GE(relu.expected_sparsity, 0.5);
  // The matmul output itself is dense.
  EXPECT_FALSE(g.node(5).MaybeSparse());
}

TEST(GraphSparsityTest, MaskAndSoftmaxPropagate) {
  Graph g;
  int x = g.AddInput("x", {8, 8});
  int m = g.AddInput("m", {8, 8}, /*expected_sparsity=*/0.9);
  int masked = g.AddMask("masked", x, m);
  int soft = g.AddSoftmax("soft", masked);
  g.PropagateSparsity();
  EXPECT_EQ(g.node(masked).sparsity, SparsitySource::kMasked);
  EXPECT_NEAR(g.node(masked).expected_sparsity, 0.9, 1e-12);
  EXPECT_EQ(g.node(soft).sparsity, SparsitySource::kPropagated);
}

TEST(GraphSparsityTest, AddOfSparseIsSparse) {
  Graph g;
  int a = g.AddInput("a", {4, 4}, 0.8);
  int b = g.AddInput("b", {4, 4}, 0.6);
  int c = g.AddAdd("c", a, b);
  int d = g.AddInput("d", {4, 4});  // dense
  int e = g.AddAdd("e", c, d);
  g.PropagateSparsity();
  EXPECT_EQ(g.node(c).sparsity, SparsitySource::kPropagated);
  EXPECT_NEAR(g.node(c).expected_sparsity, 0.6, 1e-12);  // min of the two
  EXPECT_FALSE(g.node(e).MaybeSparse());                 // dense operand densifies
}

TEST(GraphPassTest, FfnDownProjGetsKAxisWithPiggybackFlip) {
  Rng rng(3);
  Graph g = BuildFfnGraph(16, 8, 32, rng);
  auto decisions = g.PitPass();
  ASSERT_EQ(decisions.size(), 2u);  // up_proj, down_proj
  EXPECT_FALSE(decisions[0].use_pit);  // dense input -> dense kernel
  EXPECT_TRUE(decisions[1].use_pit);   // relu-fed -> sparse kernel
  EXPECT_EQ(decisions[1].axis, MatmulAxis::kK);
  EXPECT_TRUE(decisions[1].piggyback_layout_flip);
  EXPECT_NE(decisions[1].reason.find("activation"), std::string::npos);
}

TEST(GraphPassTest, ExternalRowSparsityGetsMAxis) {
  Rng rng(4);
  Graph g;
  int x = g.AddInput("padded_tokens", {64, 16}, /*expected_sparsity=*/0.4);
  int w = g.AddWeight("w", Tensor::Random({16, 8}, rng));
  g.AddMatmul("proj", x, w);
  g.PropagateSparsity();
  auto decisions = g.PitPass();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].use_pit);
  EXPECT_EQ(decisions[0].axis, MatmulAxis::kM);
  EXPECT_FALSE(decisions[0].piggyback_layout_flip);
}

TEST(GraphPassTest, ThresholdKeepsDenseKernel) {
  Rng rng(5);
  Graph g;
  int x = g.AddInput("x", {32, 16}, /*expected_sparsity=*/0.1);
  int w = g.AddWeight("w", Tensor::Random({16, 8}, rng));
  g.AddMatmul("proj", x, w);
  g.PropagateSparsity();
  auto decisions = g.PitPass(/*min_sparsity=*/0.3);
  EXPECT_FALSE(decisions[0].use_pit);
  EXPECT_NE(decisions[0].reason.find("below threshold"), std::string::npos);
}

TEST(GraphExecTest, DenseExecutionMatchesManualFfn) {
  Rng rng(6);
  Graph g = BuildFfnGraph(12, 8, 24, rng);
  Rng xr(7);
  Tensor x = Tensor::Random({12, 8}, xr);
  Tensor out = g.Run({{"x", x}});
  Tensor manual = MatMul(Relu(MatMul(x, g.weight(1))), g.weight(2));
  EXPECT_TRUE(AllClose(out, manual, 1e-4f, 1e-5f));
}

TEST(GraphExecTest, PitExecutionMatchesDense) {
  Rng rng(8);
  Graph g = BuildFfnGraph(24, 16, 48, rng);
  auto decisions = g.PitPass();
  PitCompiler compiler(V100());
  Rng xr(9);
  Tensor x = Tensor::Random({24, 16}, xr);
  Tensor dense = g.Run({{"x", x}});
  Tensor sparse = g.Run({{"x", x}}, &decisions, &compiler);
  EXPECT_TRUE(AllClose(sparse, dense, 1e-3f, 1e-4f));
}

TEST(GraphExecTest, MaskedAttentionSubgraphPitMatchesDense) {
  // scores -> mask -> softmax -> matmul(V): the masked-attention core.
  Rng rng(10);
  Graph g;
  int scores = g.AddInput("scores", {32, 32});
  int mask = g.AddInput("mask", {32, 32}, /*expected_sparsity=*/0.85);
  int v = g.AddWeight("v", Tensor::Random({32, 16}, rng));
  int masked = g.AddMask("masked", scores, mask);
  g.AddMatmul("ctx", masked, v);
  g.PropagateSparsity();
  auto decisions = g.PitPass();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].use_pit);

  Rng xr(11);
  Tensor s = Tensor::Random({32, 32}, xr);
  Tensor m = Tensor::RandomSparse({32, 32}, 0.85, xr);
  // Binarize the mask.
  for (int64_t i = 0; i < m.size(); ++i) {
    m[i] = m[i] != 0.0f ? 1.0f : 0.0f;
  }
  PitCompiler compiler(V100());
  Tensor dense = g.Run({{"scores", s}, {"mask", m}});
  Tensor sparse = g.Run({{"scores", s}, {"mask", m}}, &decisions, &compiler);
  EXPECT_TRUE(AllClose(sparse, dense, 1e-3f, 1e-4f));
}

TEST(GraphExecTest, MissingFeedAborts) {
  Rng rng(12);
  Graph g = BuildFfnGraph(4, 4, 8, rng);
  EXPECT_DEATH(g.Run({}), "missing feed");
}

}  // namespace
}  // namespace pit
