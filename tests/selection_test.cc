#include <gtest/gtest.h>

#include "pit/core/compiler.h"
#include "pit/core/kernel_selection.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(TileDatabaseTest, DefaultGridIsPopulated) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  EXPECT_EQ(db.size(), 5u * 3u * 2u);  // m x n x k grid
  for (const auto& e : db.entries()) {
    EXPECT_GT(e.tile_cost_us, 0.0);
  }
}

TEST(TileDatabaseTest, WmmaVariantsOnlyInFp16) {
  CostModel fp16(V100(), Precision::kFp16);
  CostModel fp32(V100(), Precision::kFp32);
  EXPECT_GT(TileDatabase::BuildDefault(fp16, /*include_wmma=*/true).size(),
            TileDatabase::BuildDefault(fp16, /*include_wmma=*/false).size());
  EXPECT_EQ(TileDatabase::BuildDefault(fp32, /*include_wmma=*/true).size(),
            TileDatabase::BuildDefault(fp32, /*include_wmma=*/false).size());
}

TEST(TileDatabaseTest, BestDenseTilePrefersLargeTiles) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  const TileEntry& best = db.BestDenseTile(model, 4096, 4096, 4096);
  EXPECT_GE(best.shape.m * best.shape.n, 64 * 64);
}

TEST(SelectionTest, FineGranularityPicksKAxisMicroColumn) {
  // Table 3 behaviour: (32,1)-granularity sparsity selects a (m,1) micro-tile
  // on the k axis, covering without waste.
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern p(4096, 4096, 32, 1, 0.95);
  SelectionResult r = SelectKernel(model, db, {&p}, 4096, 4096, 4096);
  EXPECT_FALSE(r.best.fallback_dense);
  EXPECT_EQ(r.best.rule.axis, MatmulAxis::kK);
  EXPECT_EQ(r.best.rule.micro_tile.cols, 1);
  EXPECT_NEAR(r.best.sparsity_after_cover, 0.95, 0.02);
}

TEST(SelectionTest, RowGranularityPicksRowRule) {
  // Whole rows dead (sequence padding): the m-axis row-gather rule must win.
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern p(4096, 1024, 1, 1024, 0.6);
  SelectionResult r = SelectKernel(model, db, {&p}, 4096, 1024, 1024);
  EXPECT_FALSE(r.best.fallback_dense);
  EXPECT_EQ(r.best.rule.axis, MatmulAxis::kM);
}

TEST(SelectionTest, DenseInputFallsBack) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern p(2048, 2048, 1, 1, 0.0);
  SelectionResult r = SelectKernel(model, db, {&p}, 2048, 2048, 2048);
  EXPECT_TRUE(r.best.fallback_dense);
  EXPECT_DOUBLE_EQ(r.best.covered_fraction, 1.0);
}

TEST(SelectionTest, CostDecreasesMonotonicallyWithSparsity) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  double prev = 1e300;
  for (double s : {0.5, 0.8, 0.95, 0.99}) {
    AnalyticPattern p(4096, 4096, 32, 1, s);
    SelectionResult r = SelectKernel(model, db, {&p}, 4096, 4096, 4096);
    EXPECT_LE(r.best.cost.Total(), prev) << s;
    prev = r.best.cost.Total();
  }
}

TEST(SelectionTest, EvaluatesFullCandidateGrid) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern p(1024, 1024, 8, 1, 0.9);
  SelectionResult r = SelectKernel(model, db, {&p}, 1024, 1024, 1024);
  EXPECT_EQ(r.candidates_evaluated, static_cast<int>(db.size()) * 2);  // axes m,k
}

TEST(SelectionTest, SearchIsFastOnAnalyticPatterns) {
  // §5.5: micro-tile search takes 30–100 us online. Analytic search here
  // must be comfortably sub-millisecond.
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern p(4096, 4096, 8, 1, 0.99);
  SelectionResult r = SelectKernel(model, db, {&p}, 4096, 4096, 4096);
  EXPECT_LT(r.search_wall_us, 20000.0);
}

TEST(SelectionTest, MultipleSamplesAggregate) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern p1(4096, 4096, 32, 1, 0.95);
  AnalyticPattern p2(4096, 4096, 32, 1, 0.99);
  SelectionResult r = SelectKernel(model, db, {&p1, &p2}, 4096, 4096, 4096);
  EXPECT_FALSE(r.best.fallback_dense);
  EXPECT_EQ(r.best.rule.micro_tile.cols, 1);
}

// ---- Compiler facade --------------------------------------------------------

TEST(CompilerTest, SparseMatmulMatchesDense) {
  PitCompiler compiler(V100());
  Rng rng(5);
  Tensor a = Tensor::RandomSparse({64, 64}, 0.9, rng);
  Tensor b = Tensor::Random({64, 32}, rng);
  PitExecution exec = compiler.SparseMatmul(a, b);
  EXPECT_TRUE(AllClose(exec.output, MatMul(a, b), 1e-3f, 1e-4f));
  EXPECT_GT(exec.plan.cost.Total(), 0.0);
}

TEST(CompilerTest, JitCacheHitsOnRepeatedShape) {
  PitCompiler compiler(V100());
  Rng rng(6);
  Tensor b = Tensor::Random({64, 32}, rng);
  for (int i = 0; i < 3; ++i) {
    Tensor a = Tensor::RandomSparse({64, 64}, 0.9, rng);
    compiler.SparseMatmul(a, b);
  }
  EXPECT_EQ(compiler.kernels_compiled(), 1);
  EXPECT_GE(compiler.cache_hits(), 2);
}

TEST(CompilerTest, DifferentSparsityBucketsRecompile) {
  PitCompiler compiler(V100());
  Rng rng(7);
  Tensor b = Tensor::Random({64, 32}, rng);
  Tensor a1 = Tensor::RandomSparse({64, 64}, 0.5, rng);
  Tensor a2 = Tensor::RandomSparse({64, 64}, 0.95, rng);
  compiler.SparseMatmul(a1, b);
  compiler.SparseMatmul(a2, b);
  EXPECT_EQ(compiler.kernels_compiled(), 2);
}

TEST(CompilerTest, DenseFallbackProducesExactResult) {
  PitCompiler compiler(V100());
  Rng rng(8);
  Tensor a = Tensor::Random({32, 32}, rng, 0.5f, 1.0f);  // fully dense
  Tensor b = Tensor::Random({32, 16}, rng);
  PitExecution exec = compiler.SparseMatmul(a, b);
  EXPECT_TRUE(exec.plan.fallback_dense);
  EXPECT_TRUE(AllClose(exec.output, MatMul(a, b), 1e-4f, 1e-5f));
}

}  // namespace
}  // namespace pit
