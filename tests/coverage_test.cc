#include <gtest/gtest.h>

#include <cmath>

#include "pit/sparse/coverage.h"

namespace pit {
namespace {

TEST(AnalyticPatternTest, MicroMatchingGranularityGivesBlockProbability) {
  AnalyticPattern p(4096, 4096, 32, 1, 0.95);
  // Micro-tile exactly one block: P(nonzero) = 1 - sparsity.
  EXPECT_NEAR(p.NonZeroProb({32, 1}), 0.05, 1e-9);
}

TEST(AnalyticPatternTest, LargerMicroCoversMoreBlocks) {
  // Table 3 row 1: granularity (2,1) at 95%, micro (16,1) spans 8 blocks:
  // covered = 1 - 0.95^8 = 0.3366 -> sparsity after cover 66.34%.
  AnalyticPattern p(4096, 4096, 2, 1, 0.95);
  EXPECT_NEAR(p.NonZeroProb({16, 1}), 1.0 - std::pow(0.95, 8.0), 1e-9);
  EXPECT_NEAR(1.0 - p.NonZeroProb({16, 1}), 0.6634, 1e-3);
}

TEST(AnalyticPatternTest, MicroSmallerThanBlockSeesOneBlock) {
  AnalyticPattern p(4096, 4096, 32, 1, 0.99);
  // Micro (8,1) inside a 32x1 block: still P = 1 - 0.99.
  EXPECT_NEAR(p.NonZeroProb({8, 1}), 0.01, 1e-9);
}

TEST(AnalyticPatternTest, ProbabilityMonotoneInMicroSize) {
  AnalyticPattern p(1024, 1024, 1, 1, 0.99);
  double prev = 0.0;
  for (int64_t r : {1, 2, 4, 8, 16, 32}) {
    const double prob = p.NonZeroProb({r, 1});
    EXPECT_GE(prob, prev);
    prev = prob;
  }
}

TEST(MaskPatternTest, AgreesWithAnalyticOnLargeSample) {
  Rng rng(1);
  Tensor mask = Tensor::RandomBlockSparse(512, 512, 8, 1, 0.95, rng);
  MaskPattern exact(&mask);
  AnalyticPattern approx(512, 512, 8, 1, 0.95);
  for (const MicroTileShape micro : {MicroTileShape{8, 1}, MicroTileShape{16, 1},
                                     MicroTileShape{32, 1}}) {
    EXPECT_NEAR(exact.NonZeroProb(micro), approx.NonZeroProb(micro), 0.02)
        << micro.ToString();
  }
  EXPECT_NEAR(exact.ElementSparsity(), 0.95, 0.01);
}

TEST(CoverAlgoTest, CountMatchesDetectorOnMask) {
  Rng rng(2);
  Tensor mask = Tensor::RandomSparse({128, 128}, 0.9, rng);
  MaskPattern pattern(&mask);
  const int64_t count = CountCoveringMicroTiles(pattern, {1, 8});
  // Manual count.
  int64_t manual = 0;
  for (int64_t r = 0; r < 128; ++r) {
    for (int64_t b = 0; b < 16; ++b) {
      for (int64_t c = b * 8; c < (b + 1) * 8; ++c) {
        if (mask.At(r, c) != 0.0f) {
          ++manual;
          break;
        }
      }
    }
  }
  EXPECT_EQ(count, manual);
}

TEST(WasteTest, ZeroWhenMicroMatchesGranularity) {
  AnalyticPattern p(4096, 4096, 32, 1, 0.95);
  EXPECT_NEAR(WastedComputationFraction(p, {32, 1}), 0.0, 1e-9);
}

TEST(WasteTest, GrowsWithMicroTileSize) {
  AnalyticPattern p(4096, 4096, 1, 1, 0.99);
  const double w8 = WastedComputationFraction(p, {1, 8});
  const double w32 = WastedComputationFraction(p, {8, 8});
  EXPECT_GT(w32, w8);
  EXPECT_GT(w8, 0.0);
  EXPECT_LE(w32, 1.0);
}

TEST(WasteTest, DenseTensorNoWaste) {
  AnalyticPattern p(64, 64, 1, 1, 0.0);
  EXPECT_NEAR(WastedComputationFraction(p, {32, 32}), 0.0, 1e-9);
}

TEST(WasteTest, BigTileOnFineSparsityIsAlmostAllWaste) {
  // Fig. 3a: 32x32 tiles on 99% element sparsity cover almost everything,
  // so ~99% of covered compute is waste.
  AnalyticPattern p(4096, 4096, 1, 1, 0.99);
  EXPECT_GT(WastedComputationFraction(p, {32, 32}), 0.95);
}

}  // namespace
}  // namespace pit
