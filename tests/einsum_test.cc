#include <gtest/gtest.h>

#include <algorithm>

#include "pit/expr/einsum.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(EinsumParseTest, MatMulRoundTrips) {
  EinsumExpr e = ParseEinsum("C[m,n] += A[m,k] * B[k,n]");
  EXPECT_EQ(e.output.name, "C");
  ASSERT_EQ(e.inputs.size(), 2u);
  EXPECT_EQ(e.inputs[0].name, "A");
  EXPECT_EQ(e.reduce, ReduceKind::kSum);
  EXPECT_EQ(e.ToString(), "C[m,n] += A[m,k] * B[k,n]");
}

TEST(EinsumParseTest, AdditiveCombineParses) {
  EinsumExpr e = ParseEinsum("C[p] = A[p] + B[p]");
  EXPECT_TRUE(e.additive_combine);
  EXPECT_EQ(e.reduce, ReduceKind::kNone);
}

TEST(EinsumParseTest, DerivedTermsParse) {
  EinsumExpr e = ParseEinsum("C[n,f,x,y] += A[n,m,x+i,y+j] * B[f,m,i,j]");
  ASSERT_EQ(e.inputs[0].axes.size(), 4u);
  EXPECT_TRUE(e.inputs[0].axes[2].derived());
  EXPECT_EQ(e.inputs[0].axes[2].ToString(), "x+i");
}

TEST(EinsumParseTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseEinsumOrNull("C[m,n]").has_value());
  EXPECT_FALSE(ParseEinsumOrNull("C[m,n] += ").has_value());
  EXPECT_FALSE(ParseEinsumOrNull("[m] += A[m]").has_value());
  EXPECT_FALSE(ParseEinsumOrNull("C[m += A[m]").has_value());
  EXPECT_FALSE(ParseEinsumOrNull("C[m] += A[m] trailing").has_value());
}

// ---- Theorem 1 on the paper's Table 1 -------------------------------------

TEST(PitAxisTest, MatMulAllThreeAxesArePit) {
  auto axes = MatMulExpr().PitAxes();
  EXPECT_TRUE(Contains(axes, "m"));
  EXPECT_TRUE(Contains(axes, "n"));
  EXPECT_TRUE(Contains(axes, "k"));
  EXPECT_EQ(axes.size(), 3u);
}

TEST(PitAxisTest, BatchMatMulAllFourAxesArePit) {
  auto axes = BatchMatMulExpr().PitAxes();
  EXPECT_EQ(axes.size(), 4u);
  for (const char* a : {"b", "m", "n", "k"}) {
    EXPECT_TRUE(Contains(axes, a)) << a;
  }
}

TEST(PitAxisTest, ReduceSumBothAxesArePit) {
  auto axes = ReduceSumExpr().PitAxes();
  EXPECT_TRUE(Contains(axes, "p"));
  EXPECT_TRUE(Contains(axes, "l"));
}

TEST(PitAxisTest, VectorAddSpatialAxisIsPit) {
  auto axes = VectorAddExpr().PitAxes();
  EXPECT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0], "p");
}

TEST(PitAxisTest, ConvolutionMatchesPaperTable) {
  // Table 1: PIT-axes of convolution are n, m, f only.
  EinsumExpr conv = ConvolutionExpr();
  auto axes = conv.PitAxes();
  EXPECT_EQ(axes.size(), 3u);
  for (const char* a : {"n", "m", "f"}) {
    EXPECT_TRUE(Contains(axes, a)) << a;
  }
  for (const char* a : {"x", "y", "i", "j"}) {
    auto info = conv.FindAxis(a);
    ASSERT_TRUE(info.has_value()) << a;
    EXPECT_FALSE(info->is_pit_axis) << a;
    EXPECT_TRUE(info->in_derived_term) << a;
  }
}

TEST(PitAxisTest, SpatialVsReductionClassification) {
  EinsumExpr e = MatMulExpr();
  EXPECT_EQ(e.FindAxis("m")->kind, AxisKind::kSpatial);
  EXPECT_EQ(e.FindAxis("n")->kind, AxisKind::kSpatial);
  EXPECT_EQ(e.FindAxis("k")->kind, AxisKind::kReduction);
}

TEST(PitAxisTest, NonCommutativeReducerDisqualifiesReductionAxis) {
  EinsumExpr e = ParseEinsum("C[p] += A[p,l]");
  e.reduce = ReduceKind::kNonCommutative;
  auto info = e.FindAxis("l");
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->is_pit_axis);
  // Spatial axis p is still a PIT-axis (layout only).
  EXPECT_TRUE(e.FindAxis("p")->is_pit_axis);
}

TEST(PitAxisTest, MissingAxisReturnsNullopt) {
  EXPECT_FALSE(MatMulExpr().FindAxis("z").has_value());
}

TEST(PitAxisTest, ReduceKindCommutativityTable) {
  EXPECT_TRUE(ReduceIsCommutativeAssociative(ReduceKind::kSum));
  EXPECT_TRUE(ReduceIsCommutativeAssociative(ReduceKind::kMax));
  EXPECT_TRUE(ReduceIsCommutativeAssociative(ReduceKind::kMin));
  EXPECT_TRUE(ReduceIsCommutativeAssociative(ReduceKind::kProd));
  EXPECT_FALSE(ReduceIsCommutativeAssociative(ReduceKind::kNone));
  EXPECT_FALSE(ReduceIsCommutativeAssociative(ReduceKind::kNonCommutative));
}

// Semantic check of Theorem 1 itself: permuting a PIT-axis of a real matmul
// does not change the result; permuting a non-PIT convolution axis does.
TEST(PitAxisTest, PermutingKAxisPreservesMatmul) {
  Rng rng(1);
  Tensor a = Tensor::Random({6, 8}, rng);
  Tensor b = Tensor::Random({8, 5}, rng);
  Tensor ref = MatMul(a, b);
  // Permute k: reorder columns of A and rows of B identically.
  std::vector<int64_t> perm = {3, 7, 0, 2, 6, 5, 1, 4};
  Tensor ap({6, 8}), bp({8, 5});
  for (int64_t k = 0; k < 8; ++k) {
    for (int64_t i = 0; i < 6; ++i) {
      ap.At(i, k) = a.At(i, perm[static_cast<size_t>(k)]);
    }
    for (int64_t j = 0; j < 5; ++j) {
      bp.At(k, j) = b.At(perm[static_cast<size_t>(k)], j);
    }
  }
  EXPECT_TRUE(AllClose(MatMul(ap, bp), ref));
}

TEST(PitAxisTest, PermutingDerivedConvAxisChangesResult) {
  Rng rng(2);
  Tensor in = Tensor::Random({1, 1, 4, 4}, rng);
  Tensor w = Tensor::Random({1, 1, 2, 2}, rng);
  Tensor ref = Conv2D(in, w);
  // Permute the x axis of the input (a derived, non-PIT axis).
  Tensor permuted = in;
  for (int64_t y = 0; y < 4; ++y) {
    std::swap(permuted[0 * 4 + y], permuted[3 * 4 + y]);  // swap rows 0 and 3
  }
  Tensor out = Conv2D(permuted, w);
  EXPECT_FALSE(AllClose(out, ref));
}

}  // namespace
}  // namespace pit
