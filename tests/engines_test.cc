#include <gtest/gtest.h>

#include "pit/baselines/engines.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

class EngineCorrectness : public ::testing::TestWithParam<double> {};

TEST_P(EngineCorrectness, AllEnginesMatchDenseReference) {
  const double sparsity = GetParam();
  Rng rng(static_cast<uint64_t>(sparsity * 1000) + 3);
  Tensor a = Tensor::RandomSparse({48, 64}, sparsity, rng);
  Tensor b = Tensor::Random({64, 24}, rng);
  Tensor ref = MatMul(a, b);
  for (const auto& engine : MakeAllEngines()) {
    EXPECT_TRUE(AllClose(engine->Execute(a, b), ref, 1e-3f, 1e-4f))
        << engine->name() << " at sparsity " << sparsity;
  }
}

INSTANTIATE_TEST_SUITE_P(Sparsities, EngineCorrectness,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.0));

TEST(EnginePriceTest, PitBeatsDenseAtHighSparsity) {
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 32, 1, 0.95);
  DenseEngine dense;
  PitEngine pit;
  const double d = dense.Price(model, p, 4096, 4096, 4096, false).cost.Total();
  const double q = pit.Price(model, p, 4096, 4096, 4096, false).cost.Total();
  EXPECT_LT(q, d);
  EXPECT_GT(d / q, 3.0);  // paper: large factors at 95%
}

TEST(EnginePriceTest, DenseBeatsCusparseAtLowSparsity) {
  // Fig. 3b: cuSPARSE worse than dense when sparsity is only 70%.
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 1, 1, 0.7);
  DenseEngine dense;
  CusparseEngine cusparse;
  EXPECT_LT(dense.Price(model, p, 4096, 4096, 4096, true).cost.Total(),
            cusparse.Price(model, p, 4096, 4096, 4096, true).cost.Total());
}

TEST(EnginePriceTest, CusparseConversionDominatesAtHighSparsity) {
  // Fig. 3b: conversion >> computation at 99%.
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 1, 1, 0.99);
  CusparseEngine cusparse;
  EnginePrice price = cusparse.Price(model, p, 4096, 4096, 4096, true);
  EXPECT_GT(price.cost.convert_us, price.cost.compute_us);
}

TEST(EnginePriceTest, PitBeatsBlockSparseOnFineGranularity) {
  // Fig. 16, 32x1 granularity: PIT >> OpenAI block sparse (waste) and
  // faster than Sputnik/SparTA.
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 32, 1, 0.95);
  PitEngine pit;
  TritonBlockEngine triton;
  SputnikEngine sputnik;
  SpartaEngine sparta;
  const double q = pit.Price(model, p, 4096, 4096, 4096, false).cost.Total();
  EXPECT_GT(triton.Price(model, p, 4096, 4096, 4096, false).cost.Total() / q, 3.0);
  EXPECT_GT(sputnik.Price(model, p, 4096, 4096, 4096, false).cost.Total() / q, 1.5);
  EXPECT_GT(sparta.Price(model, p, 4096, 4096, 4096, false).cost.Total() / q, 1.1);
}

TEST(EnginePriceTest, PitSimilarToBlockSparseOnCoarseGranularity) {
  // Fig. 16, 32x64 granularity: PIT, SparTA, OpenAI-BS within ~2x band.
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 32, 64, 0.9);
  PitEngine pit;
  TritonBlockEngine triton;
  const double q = pit.Price(model, p, 4096, 4096, 4096, false).cost.Total();
  const double t = triton.Price(model, p, 4096, 4096, 4096, false).cost.Total();
  EXPECT_LT(t / q, 2.5);
  EXPECT_LT(q / t, 2.5);
}

TEST(EnginePriceTest, SpartaCompileMakesDynamicUseImpractical) {
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 32, 1, 0.95);
  SpartaEngine sparta;
  const EnginePrice dynamic = sparta.Price(model, p, 4096, 4096, 4096, true);
  const EnginePrice statik = sparta.Price(model, p, 4096, 4096, 4096, false);
  EXPECT_GT(dynamic.cost.Total(), 1e8);  // hundreds of seconds
  EXPECT_LT(statik.cost.Total(), 1e6);
  EXPECT_GT(dynamic.aot_compile_us, 3e8);
}

TEST(EnginePriceTest, TritonWasteHighOnFinePatterns) {
  CostModel model(V100());
  AnalyticPattern p(4096, 4096, 1, 32, 0.97);  // 1x32 activation-style
  TritonBlockEngine triton;
  PitEngine pit;
  EXPECT_GT(triton.Price(model, p, 4096, 4096, 4096, false).wasted_fraction, 0.5);
  EXPECT_LT(pit.Price(model, p, 4096, 4096, 4096, false).wasted_fraction, 0.4);
}

TEST(EnginePriceTest, PitFallsBackToDenseWhenDense) {
  CostModel model(V100());
  AnalyticPattern p(2048, 2048, 1, 1, 0.0);  // fully dense
  PitEngine pit;
  DenseEngine dense;
  const double q = pit.Price(model, p, 2048, 2048, 2048, false).cost.Total();
  const double d = dense.Price(model, p, 2048, 2048, 2048, false).cost.Total();
  EXPECT_LT(q / d, 1.3);  // no sparse-path blow-up on dense inputs
}

TEST(EnginePriceTest, MakeAllEnginesHasExpectedLineup) {
  auto engines = MakeAllEngines();
  ASSERT_EQ(engines.size(), 5u);
  EXPECT_EQ(engines.back()->name(), "PIT");
}

}  // namespace
}  // namespace pit
