// Differential suite for the multi-stream serving engine: per-request outputs
// must be bitwise identical to single-stream replay (and to the stacks' eager
// oracles) for any (streams x scheduler x thread count) combination, across
// mixed request shapes, masked and unmasked, with reused context pools. The
// suite runs under TSan in CI: concurrent streams over shared immutable plans
// must be provably race-free, not just stable on one machine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/common/rng.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)), 0)
      << "max abs diff " << MaxAbsDiff(a, b);
}

Tensor MakeMask(int64_t tokens, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, 0.4, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

// A request mix over several token counts, some masked. Masks are keyed by
// token count and owned here (requests reference them).
struct RequestMix {
  std::vector<ServeRequest> requests;
  std::vector<Tensor> masks;  // one per distinct token count, index parallel to token_counts
  std::vector<int64_t> token_counts;
};

RequestMix BuildMix(int64_t hidden, const std::vector<int64_t>& token_counts, int per_shape,
                    uint64_t seed) {
  RequestMix mix;
  mix.token_counts = token_counts;
  Rng rng(seed);
  for (int64_t tokens : token_counts) {
    mix.masks.push_back(MakeMask(tokens, rng));
  }
  // Interleave shapes and mask usage so consecutive requests rarely share a
  // pooled context (the pool-reuse path still gets hit via repeats).
  for (int r = 0; r < per_shape; ++r) {
    for (size_t t = 0; t < token_counts.size(); ++t) {
      ServeRequest req;
      req.x = Tensor::Random({token_counts[t], hidden}, rng);
      if ((r + static_cast<int>(t)) % 2 == 1) {
        req.attn_mask = &mix.masks[t];
      }
      mix.requests.push_back(std::move(req));
    }
  }
  return mix;
}

TEST(ServingEngineTest, MatchesEagerAcrossStreamsSchedulersAndThreads) {
  Rng wr(1);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {8, 12, 16}, 4, 2);

  // Oracle: the eager per-op composition, one request at a time.
  std::vector<Tensor> expected;
  for (const ServeRequest& req : mix.requests) {
    expected.push_back(stack.ForwardEager(req.x, req.attn_mask));
  }

  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int threads : {1, 4}) {
      for (int streams : {1, 2, 4}) {
        ScopedPlanSched sched_guard(sched);
        ScopedNumThreads thread_guard(threads);
        ServingEngineOptions options;
        options.num_streams = streams;
        ServingEngine engine(stack, options);
        std::vector<Tensor> outputs = engine.Serve(mix.requests);
        ASSERT_EQ(outputs.size(), expected.size());
        for (size_t i = 0; i < outputs.size(); ++i) {
          ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
              << "request " << i << " (streams=" << streams << ", threads=" << threads
              << ", sched=" << (sched == PlanSched::kWavefront ? "wavefront" : "seq") << ")";
        }
      }
    }
  }
}

TEST(ServingEngineTest, RandomizedRequestMixFuzzMatchesSingleStream) {
  // Fuzzed request streams (random token counts, random mask usage, random
  // order) served at several stream counts must reproduce the 1-stream
  // engine's outputs bitwise — the request-to-stream assignment must be
  // invisible in the results.
  Rng wr(3);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  Rng fuzz(4);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<int64_t> counts;
    std::vector<Tensor> masks;
    for (int c = 0; c < 3; ++c) {
      counts.push_back(4 + static_cast<int64_t>(fuzz.NextBelow(12)));
      masks.push_back(MakeMask(counts.back(), fuzz));
    }
    std::vector<ServeRequest> requests;
    const int n = 6 + static_cast<int>(fuzz.NextBelow(10));
    for (int i = 0; i < n; ++i) {
      const size_t pick = fuzz.NextBelow(counts.size());
      ServeRequest req;
      req.x = Tensor::Random({counts[pick], 16}, fuzz);
      if (fuzz.NextBool(0.5)) {
        req.attn_mask = &masks[pick];
      }
      requests.push_back(std::move(req));
    }

    ScopedNumThreads threads(4);
    ServingEngineOptions single;
    single.num_streams = 1;
    ServingEngine baseline(stack, single);
    std::vector<Tensor> expected = baseline.Serve(requests);

    for (int streams : {2, 3}) {
      ServingEngineOptions options;
      options.num_streams = streams;
      ServingEngine engine(stack, options);
      std::vector<Tensor> outputs = engine.Serve(requests);
      ASSERT_EQ(outputs.size(), expected.size());
      for (size_t i = 0; i < outputs.size(); ++i) {
        ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
            << "fuzz trial " << trial << " request " << i << " streams " << streams;
      }
    }
  }
}

TEST(ServingEngineTest, ContextPoolsReuseAndReportHighWater) {
  Rng wr(5);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  RequestMix mix = BuildMix(16, {8, 12}, 3, 6);

  ScopedNumThreads threads(2);
  ServingEngineOptions options;
  options.num_streams = 2;
  ServingEngine engine(stack, options);
  engine.Serve(mix.requests);
  const ServingEngineStats first = engine.stats();
  EXPECT_EQ(first.requests, static_cast<int64_t>(mix.requests.size()));
  EXPECT_EQ(first.num_streams, 2);
  EXPECT_GT(first.requests_per_sec, 0.0);
  EXPECT_GE(first.p99_latency_us, first.p50_latency_us);
  EXPECT_LE(first.p99_latency_us, first.wall_us);
  // Pools exist and the high-water covers the current footprint. Each stream
  // pools at most one context set per (tokens, masked?) it actually served.
  EXPECT_GT(first.pool_contexts, 0);
  EXPECT_GT(first.pool_arena_bytes, 0);
  EXPECT_GE(first.pool_contexts_highwater, first.pool_contexts);
  EXPECT_GE(first.pool_arena_bytes_highwater, first.pool_arena_bytes);
  const int64_t max_sets = 2 * 4;  // streams x (2 token counts x masked?)
  EXPECT_LE(first.pool_contexts, max_sets * stack.layers());
  int64_t assigned = 0;
  for (int64_t r : first.per_stream_requests) {
    assigned += r;
  }
  EXPECT_EQ(assigned, first.requests);

  // A second Serve over the same shapes at most fills pool gaps (the greedy
  // request claiming is timing-dependent, so a stream may meet a shape for
  // the first time here): the pool never exceeds the per-shape bound and the
  // high-water only moves up.
  engine.Serve(mix.requests);
  const ServingEngineStats second = engine.stats();
  EXPECT_EQ(second.requests, 2 * first.requests);
  EXPECT_GE(second.pool_contexts, first.pool_contexts);
  EXPECT_LE(second.pool_contexts, max_sets * stack.layers());
  EXPECT_GE(second.pool_arena_bytes_highwater, first.pool_arena_bytes_highwater);

  // A single-stream engine claims deterministically: its pool is complete
  // after one Serve and strictly reused afterwards — zero growth.
  ServingEngineOptions one;
  one.num_streams = 1;
  ServingEngine single(stack, one);
  single.Serve(mix.requests);
  const ServingEngineStats s1 = single.stats();
  single.Serve(mix.requests);
  const ServingEngineStats s2 = single.stats();
  EXPECT_EQ(s2.pool_contexts, s1.pool_contexts);
  EXPECT_EQ(s2.pool_arena_bytes, s1.pool_arena_bytes);
  EXPECT_EQ(s2.pool_arena_bytes_highwater, s1.pool_arena_bytes_highwater);
}

TEST(ServingEngineTest, FfnStackServingMatchesEager) {
  Rng wr(7);
  PlannedFfnStack stack(3, 16, 64, wr);
  Rng rr(8);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 10; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({8 + 4 * (i % 3), 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions options;
  options.num_streams = 3;
  ServingEngine engine(stack, options);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], stack.ForwardEager(requests[i].x)))
        << "request " << i;
  }
}

TEST(ServingEngineTest, PitServingMatchesSingleStreamPit) {
  // PIT streams each own a compiler with resampling off, so kernel selection
  // is a pure function of the input — outputs must be independent of the
  // request-to-stream assignment.
  Rng wr(9);
  PlannedFfnStack stack(2, 16, 64, wr);
  Rng rr(10);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 8; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({12, 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions pit;
  pit.use_pit = true;
  pit.num_streams = 1;
  ServingEngine baseline(stack, pit);
  std::vector<Tensor> expected = baseline.Serve(requests);

  pit.num_streams = 3;
  ServingEngine engine(stack, pit);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i])) << "request " << i;
  }
}

TEST(ServingEngineTest, NumStreamsResolvesFromOptionsThenEnvThenThreads) {
  Rng wr(11);
  PlannedFfnStack stack(1, 8, 16, wr);
  // Pin the environment so the test exercises all three resolution tiers
  // deterministically, whatever the invoking shell exported.
  const char* saved = std::getenv("PIT_NUM_STREAMS");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("PIT_NUM_STREAMS", "7", /*overwrite=*/1);
  {
    // Explicit option wins over the environment.
    ServingEngineOptions options;
    options.num_streams = 5;
    ServingEngine engine(stack, options);
    EXPECT_EQ(engine.num_streams(), 5);
  }
  {
    // No option: the strict-parsed environment knob decides.
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.num_streams(), 7);
  }
  unsetenv("PIT_NUM_STREAMS");
  {
    // Neither: the engine defaults to the worker count.
    ScopedNumThreads threads(3);
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.num_streams(), 3);
  }
  if (saved != nullptr) {
    setenv("PIT_NUM_STREAMS", saved_value.c_str(), 1);
  }
}

// ---- Continuous ragged batching --------------------------------------------
//
// Batched serving packs mixed-length requests into bucket-padded dense tiles
// behind a block-diagonal mask. The contract under test: per-request outputs
// are bitwise identical to the unbatched engine and the eager oracle at any
// (streams x threads x scheduler x window x token budget) combination.

TEST(RaggedBatchingTest, MatchesEagerAndUnbatchedAcrossCombinations) {
  Rng wr(21);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {5, 9, 16}, 4, 22);

  std::vector<Tensor> expected;
  for (const ServeRequest& req : mix.requests) {
    expected.push_back(stack.ForwardEager(req.x, req.attn_mask));
  }

  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int threads : {1, 4}) {
      for (int streams : {1, 2, 4}) {
        ScopedPlanSched sched_guard(sched);
        ScopedNumThreads thread_guard(threads);
        ServingEngineOptions options;
        options.num_streams = streams;
        options.batch_window = 4;
        options.max_batch_tokens = 48;
        ServingEngine engine(stack, options);
        std::vector<Tensor> outputs = engine.Serve(mix.requests);
        ASSERT_EQ(outputs.size(), expected.size());
        for (size_t i = 0; i < outputs.size(); ++i) {
          ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
              << "request " << i << " (streams=" << streams << ", threads=" << threads
              << ", sched=" << (sched == PlanSched::kWavefront ? "wavefront" : "seq") << ")";
        }
        // Requests were actually coalesced, not served 1:1.
        EXPECT_LT(engine.stats().batches, engine.stats().requests);
      }
    }
  }
}

TEST(RaggedBatchingTest, RandomizedMixedLengthFuzzMatchesOneToOne) {
  // Fuzzed lengths, masks, and admission knobs: the batched engine must
  // reproduce the unbatched single-stream engine bitwise for every request —
  // batch composition, bucket padding, and the block-diagonal mask are
  // invisible in the results.
  Rng wr(23);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  Rng fuzz(24);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Tensor> masks;
    std::vector<ServeRequest> requests;
    const int n = 8 + static_cast<int>(fuzz.NextBelow(10));
    for (int i = 0; i < n; ++i) {
      const int64_t tokens = 3 + static_cast<int64_t>(fuzz.NextBelow(14));
      ServeRequest req;
      req.x = Tensor::Random({tokens, 16}, fuzz);
      if (fuzz.NextBool(0.5)) {
        masks.push_back(MakeMask(tokens, fuzz));
      }
      requests.push_back(std::move(req));
    }
    // Wire masks after the vectors stop reallocating.
    size_t mask_idx = 0;
    for (ServeRequest& req : requests) {
      if (mask_idx < masks.size() && masks[mask_idx].dim(0) == req.x.dim(0)) {
        req.attn_mask = &masks[mask_idx];
        ++mask_idx;
      }
    }

    ScopedNumThreads threads(4);
    ServingEngineOptions unbatched;
    unbatched.num_streams = 1;
    unbatched.batch_window = 1;
    ServingEngine baseline(stack, unbatched);
    std::vector<Tensor> expected = baseline.Serve(requests);

    for (int window : {2, 5}) {
      for (int max_tokens : {24, 64}) {
        for (int streams : {1, 3}) {
          ServingEngineOptions options;
          options.num_streams = streams;
          options.batch_window = window;
          options.max_batch_tokens = max_tokens;
          ServingEngine engine(stack, options);
          std::vector<Tensor> outputs = engine.Serve(requests);
          ASSERT_EQ(outputs.size(), expected.size());
          for (size_t i = 0; i < outputs.size(); ++i) {
            ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
                << "fuzz trial " << trial << " request " << i << " window " << window
                << " max_tokens " << max_tokens << " streams " << streams;
          }
        }
      }
    }
  }
}

TEST(RaggedBatchingTest, FfnStackBatchingMatchesEager) {
  Rng wr(25);
  PlannedFfnStack stack(3, 16, 64, wr);
  Rng rr(26);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 12; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({3 + 5 * (i % 4), 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions options;
  options.num_streams = 2;
  options.batch_window = 4;
  options.max_batch_tokens = 40;
  ServingEngine engine(stack, options);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], stack.ForwardEager(requests[i].x)))
        << "request " << i;
  }
  EXPECT_LT(engine.stats().batches, engine.stats().requests);
}

TEST(RaggedBatchingTest, PitBatchedServingMatchesSingleStreamBatched) {
  // PIT kernel selection sees the packed tile's sparsity, so batched PIT is
  // not bitwise against 1:1 PIT — the contract is stream-assignment
  // invariance at fixed batching knobs.
  Rng wr(27);
  PlannedFfnStack stack(2, 16, 64, wr);
  Rng rr(28);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 10; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({4 + 3 * (i % 3), 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions pit;
  pit.use_pit = true;
  pit.batch_window = 3;
  pit.max_batch_tokens = 32;
  pit.num_streams = 1;
  ServingEngine baseline(stack, pit);
  std::vector<Tensor> expected = baseline.Serve(requests);

  pit.num_streams = 3;
  ServingEngine engine(stack, pit);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i])) << "request " << i;
  }
}

TEST(RaggedBatchingTest, StatsReportBucketsUtilizationAndPlanReuse) {
  Rng wr(29);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  RequestMix mix = BuildMix(16, {5, 9, 13}, 4, 30);

  // Single stream: claims (and therefore the batch -> stream mapping) are
  // deterministic, so the second-pass pure-hit assertions below cannot be
  // perturbed by which stream first meets a bucket.
  ScopedNumThreads threads(2);
  ServingEngineOptions options;
  options.num_streams = 1;
  options.batch_window = 4;
  options.max_batch_tokens = 40;
  ServingEngine engine(stack, options);
  engine.Serve(mix.requests);
  const ServingEngineStats& stats = engine.stats();

  EXPECT_EQ(stats.batch_window, 4);
  EXPECT_EQ(stats.max_batch_tokens, 40);
  EXPECT_GT(stats.batches, 0);
  EXPECT_LT(stats.batches, stats.requests);
  EXPECT_GT(stats.packed_utilization, 0.0);
  EXPECT_LE(stats.packed_utilization, 1.0);
  ASSERT_FALSE(stats.buckets.empty());
  int64_t bucket_requests = 0;
  int64_t prev_bucket = 0;
  for (const ServingBucketStats& b : stats.buckets) {
    EXPECT_GT(b.bucket, prev_bucket);  // ascending, distinct
    prev_bucket = b.bucket;
    // Power-of-two bucket grid, floored at 16.
    EXPECT_GE(b.bucket, 16);
    EXPECT_EQ(b.bucket & (b.bucket - 1), 0) << "bucket " << b.bucket;
    EXPECT_GE(b.requests, b.batches);
    EXPECT_GE(b.packed_tokens, b.batches);  // at least one real row per batch
    EXPECT_EQ(b.computed_tokens, b.batches * b.bucket);
    EXPECT_GE(b.plan_misses, 1);  // someone compiled the bucket's plan
    EXPECT_GE(b.pool_contexts_highwater, b.pool_contexts);
    EXPECT_GE(b.p99_latency_us, b.p50_latency_us);
    bucket_requests += b.requests;
  }
  EXPECT_EQ(bucket_requests, stats.requests);

  // A second pass over the same mix composes the same batches: pure plan-pool
  // hits, no new misses, unchanged pooled contexts.
  std::vector<int64_t> misses_before;
  for (const ServingBucketStats& b : stats.buckets) {
    misses_before.push_back(b.plan_misses);
  }
  const int64_t contexts_before = stats.pool_contexts;
  engine.Serve(mix.requests);
  const ServingEngineStats& again = engine.stats();
  EXPECT_EQ(again.pool_contexts, contexts_before);
  ASSERT_EQ(again.buckets.size(), misses_before.size());
  int64_t hits = 0;
  for (size_t i = 0; i < again.buckets.size(); ++i) {
    EXPECT_EQ(again.buckets[i].plan_misses, misses_before[i]) << "bucket " << i;
    hits += again.buckets[i].plan_hits;
  }
  EXPECT_GT(hits, 0);
}

TEST(RaggedBatchingTest, KnobsResolveFromOptionsThenEnvThenDefault) {
  Rng wr(31);
  PlannedFfnStack stack(1, 8, 16, wr);
  const char* saved_window = std::getenv("PIT_BATCH_WINDOW");
  const std::string saved_window_value = saved_window != nullptr ? saved_window : "";
  const char* saved_tokens = std::getenv("PIT_BATCH_TOKENS");
  const std::string saved_tokens_value = saved_tokens != nullptr ? saved_tokens : "";
  setenv("PIT_BATCH_WINDOW", "6", /*overwrite=*/1);
  setenv("PIT_BATCH_TOKENS", "96", /*overwrite=*/1);
  {
    // Explicit options win over the environment.
    ServingEngineOptions options;
    options.batch_window = 3;
    options.max_batch_tokens = 128;
    ServingEngine engine(stack, options);
    EXPECT_EQ(engine.batch_window(), 3);
    EXPECT_EQ(engine.max_batch_tokens(), 128);
  }
  {
    // No options: the strict-parsed environment knobs decide.
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.batch_window(), 6);
    EXPECT_EQ(engine.max_batch_tokens(), 96);
  }
  unsetenv("PIT_BATCH_WINDOW");
  unsetenv("PIT_BATCH_TOKENS");
  {
    // Neither: batching off (window 1) with the default token budget.
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.batch_window(), 1);
    EXPECT_EQ(engine.max_batch_tokens(), 512);
  }
  if (saved_window != nullptr) {
    setenv("PIT_BATCH_WINDOW", saved_window_value.c_str(), 1);
  }
  if (saved_tokens != nullptr) {
    setenv("PIT_BATCH_TOKENS", saved_tokens_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace pit
