// Differential suite for the multi-stream serving engine: per-request outputs
// must be bitwise identical to single-stream replay (and to the stacks' eager
// oracles) for any (streams x scheduler x thread count) combination, across
// mixed request shapes, masked and unmasked, with reused context pools. The
// suite runs under TSan in CI: concurrent streams over shared immutable plans
// must be provably race-free, not just stable on one machine.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/fault_injection.h"
#include "pit/common/parallel_for.h"
#include "pit/common/rng.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)), 0)
      << "max abs diff " << MaxAbsDiff(a, b);
}

Tensor MakeMask(int64_t tokens, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, 0.4, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

// A request mix over several token counts, some masked. Masks are keyed by
// token count and owned here (requests reference them).
struct RequestMix {
  std::vector<ServeRequest> requests;
  std::vector<Tensor> masks;  // one per distinct token count, index parallel to token_counts
  std::vector<int64_t> token_counts;
};

RequestMix BuildMix(int64_t hidden, const std::vector<int64_t>& token_counts, int per_shape,
                    uint64_t seed) {
  RequestMix mix;
  mix.token_counts = token_counts;
  Rng rng(seed);
  for (int64_t tokens : token_counts) {
    mix.masks.push_back(MakeMask(tokens, rng));
  }
  // Interleave shapes and mask usage so consecutive requests rarely share a
  // pooled context (the pool-reuse path still gets hit via repeats).
  for (int r = 0; r < per_shape; ++r) {
    for (size_t t = 0; t < token_counts.size(); ++t) {
      ServeRequest req;
      req.x = Tensor::Random({token_counts[t], hidden}, rng);
      if ((r + static_cast<int>(t)) % 2 == 1) {
        req.attn_mask = &mix.masks[t];
      }
      mix.requests.push_back(std::move(req));
    }
  }
  return mix;
}

TEST(ServingEngineTest, MatchesEagerAcrossStreamsSchedulersAndThreads) {
  Rng wr(1);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {8, 12, 16}, 4, 2);

  // Oracle: the eager per-op composition, one request at a time.
  std::vector<Tensor> expected;
  for (const ServeRequest& req : mix.requests) {
    expected.push_back(stack.ForwardEager(req.x, req.attn_mask));
  }

  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int threads : {1, 4}) {
      for (int streams : {1, 2, 4}) {
        ScopedPlanSched sched_guard(sched);
        ScopedNumThreads thread_guard(threads);
        ServingEngineOptions options;
        options.num_streams = streams;
        ServingEngine engine(stack, options);
        std::vector<Tensor> outputs = engine.Serve(mix.requests);
        ASSERT_EQ(outputs.size(), expected.size());
        for (size_t i = 0; i < outputs.size(); ++i) {
          ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
              << "request " << i << " (streams=" << streams << ", threads=" << threads
              << ", sched=" << (sched == PlanSched::kWavefront ? "wavefront" : "seq") << ")";
        }
      }
    }
  }
}

TEST(ServingEngineTest, RandomizedRequestMixFuzzMatchesSingleStream) {
  // Fuzzed request streams (random token counts, random mask usage, random
  // order) served at several stream counts must reproduce the 1-stream
  // engine's outputs bitwise — the request-to-stream assignment must be
  // invisible in the results.
  Rng wr(3);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  Rng fuzz(4);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<int64_t> counts;
    std::vector<Tensor> masks;
    for (int c = 0; c < 3; ++c) {
      counts.push_back(4 + static_cast<int64_t>(fuzz.NextBelow(12)));
      masks.push_back(MakeMask(counts.back(), fuzz));
    }
    std::vector<ServeRequest> requests;
    const int n = 6 + static_cast<int>(fuzz.NextBelow(10));
    for (int i = 0; i < n; ++i) {
      const size_t pick = fuzz.NextBelow(counts.size());
      ServeRequest req;
      req.x = Tensor::Random({counts[pick], 16}, fuzz);
      if (fuzz.NextBool(0.5)) {
        req.attn_mask = &masks[pick];
      }
      requests.push_back(std::move(req));
    }

    ScopedNumThreads threads(4);
    ServingEngineOptions single;
    single.num_streams = 1;
    ServingEngine baseline(stack, single);
    std::vector<Tensor> expected = baseline.Serve(requests);

    for (int streams : {2, 3}) {
      ServingEngineOptions options;
      options.num_streams = streams;
      ServingEngine engine(stack, options);
      std::vector<Tensor> outputs = engine.Serve(requests);
      ASSERT_EQ(outputs.size(), expected.size());
      for (size_t i = 0; i < outputs.size(); ++i) {
        ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
            << "fuzz trial " << trial << " request " << i << " streams " << streams;
      }
    }
  }
}

TEST(ServingEngineTest, ContextPoolsReuseAndReportHighWater) {
  Rng wr(5);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  RequestMix mix = BuildMix(16, {8, 12}, 3, 6);

  ScopedNumThreads threads(2);
  ServingEngineOptions options;
  options.num_streams = 2;
  ServingEngine engine(stack, options);
  engine.Serve(mix.requests);
  const ServingEngineStats first = engine.stats();
  EXPECT_EQ(first.requests, static_cast<int64_t>(mix.requests.size()));
  EXPECT_EQ(first.num_streams, 2);
  EXPECT_GT(first.requests_per_sec, 0.0);
  EXPECT_GE(first.p99_latency_us, first.p50_latency_us);
  EXPECT_LE(first.p99_latency_us, first.wall_us);
  // Pools exist and the high-water covers the current footprint. Each stream
  // pools at most one context set per (tokens, masked?) it actually served.
  EXPECT_GT(first.pool_contexts, 0);
  EXPECT_GT(first.pool_arena_bytes, 0);
  EXPECT_GE(first.pool_contexts_highwater, first.pool_contexts);
  EXPECT_GE(first.pool_arena_bytes_highwater, first.pool_arena_bytes);
  const int64_t max_sets = 2 * 4;  // streams x (2 token counts x masked?)
  EXPECT_LE(first.pool_contexts, max_sets * stack.layers());
  int64_t assigned = 0;
  for (int64_t r : first.per_stream_requests) {
    assigned += r;
  }
  EXPECT_EQ(assigned, first.requests);

  // A second Serve over the same shapes at most fills pool gaps (the greedy
  // request claiming is timing-dependent, so a stream may meet a shape for
  // the first time here): the pool never exceeds the per-shape bound and the
  // high-water only moves up.
  engine.Serve(mix.requests);
  const ServingEngineStats second = engine.stats();
  EXPECT_EQ(second.requests, 2 * first.requests);
  EXPECT_GE(second.pool_contexts, first.pool_contexts);
  EXPECT_LE(second.pool_contexts, max_sets * stack.layers());
  EXPECT_GE(second.pool_arena_bytes_highwater, first.pool_arena_bytes_highwater);

  // A single-stream engine claims deterministically: its pool is complete
  // after one Serve and strictly reused afterwards — zero growth.
  ServingEngineOptions one;
  one.num_streams = 1;
  ServingEngine single(stack, one);
  single.Serve(mix.requests);
  const ServingEngineStats s1 = single.stats();
  single.Serve(mix.requests);
  const ServingEngineStats s2 = single.stats();
  EXPECT_EQ(s2.pool_contexts, s1.pool_contexts);
  EXPECT_EQ(s2.pool_arena_bytes, s1.pool_arena_bytes);
  EXPECT_EQ(s2.pool_arena_bytes_highwater, s1.pool_arena_bytes_highwater);
}

TEST(ServingEngineTest, FfnStackServingMatchesEager) {
  Rng wr(7);
  PlannedFfnStack stack(3, 16, 64, wr);
  Rng rr(8);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 10; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({8 + 4 * (i % 3), 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions options;
  options.num_streams = 3;
  ServingEngine engine(stack, options);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], stack.ForwardEager(requests[i].x)))
        << "request " << i;
  }
}

TEST(ServingEngineTest, PitServingMatchesSingleStreamPit) {
  // PIT streams each own a compiler with resampling off, so kernel selection
  // is a pure function of the input — outputs must be independent of the
  // request-to-stream assignment.
  Rng wr(9);
  PlannedFfnStack stack(2, 16, 64, wr);
  Rng rr(10);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 8; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({12, 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions pit;
  pit.use_pit = true;
  pit.num_streams = 1;
  ServingEngine baseline(stack, pit);
  std::vector<Tensor> expected = baseline.Serve(requests);

  pit.num_streams = 3;
  ServingEngine engine(stack, pit);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i])) << "request " << i;
  }
}

TEST(ServingEngineTest, NumStreamsResolvesFromOptionsThenEnvThenThreads) {
  Rng wr(11);
  PlannedFfnStack stack(1, 8, 16, wr);
  // Pin the environment so the test exercises all three resolution tiers
  // deterministically, whatever the invoking shell exported.
  const char* saved = std::getenv("PIT_NUM_STREAMS");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("PIT_NUM_STREAMS", "7", /*overwrite=*/1);
  {
    // Explicit option wins over the environment.
    ServingEngineOptions options;
    options.num_streams = 5;
    ServingEngine engine(stack, options);
    EXPECT_EQ(engine.num_streams(), 5);
  }
  {
    // No option: the strict-parsed environment knob decides.
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.num_streams(), 7);
  }
  unsetenv("PIT_NUM_STREAMS");
  {
    // Neither: the engine defaults to the worker count.
    ScopedNumThreads threads(3);
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.num_streams(), 3);
  }
  if (saved != nullptr) {
    setenv("PIT_NUM_STREAMS", saved_value.c_str(), 1);
  }
}

// ---- Continuous ragged batching --------------------------------------------
//
// Batched serving packs mixed-length requests into bucket-padded dense tiles
// behind a block-diagonal mask. The contract under test: per-request outputs
// are bitwise identical to the unbatched engine and the eager oracle at any
// (streams x threads x scheduler x window x token budget) combination.

TEST(RaggedBatchingTest, MatchesEagerAndUnbatchedAcrossCombinations) {
  Rng wr(21);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {5, 9, 16}, 4, 22);

  std::vector<Tensor> expected;
  for (const ServeRequest& req : mix.requests) {
    expected.push_back(stack.ForwardEager(req.x, req.attn_mask));
  }

  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int threads : {1, 4}) {
      for (int streams : {1, 2, 4}) {
        ScopedPlanSched sched_guard(sched);
        ScopedNumThreads thread_guard(threads);
        ServingEngineOptions options;
        options.num_streams = streams;
        options.batch_window = 4;
        options.max_batch_tokens = 48;
        ServingEngine engine(stack, options);
        std::vector<Tensor> outputs = engine.Serve(mix.requests);
        ASSERT_EQ(outputs.size(), expected.size());
        for (size_t i = 0; i < outputs.size(); ++i) {
          ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
              << "request " << i << " (streams=" << streams << ", threads=" << threads
              << ", sched=" << (sched == PlanSched::kWavefront ? "wavefront" : "seq") << ")";
        }
        // Requests were actually coalesced, not served 1:1.
        EXPECT_LT(engine.stats().batches, engine.stats().requests);
      }
    }
  }
}

TEST(RaggedBatchingTest, RandomizedMixedLengthFuzzMatchesOneToOne) {
  // Fuzzed lengths, masks, and admission knobs: the batched engine must
  // reproduce the unbatched single-stream engine bitwise for every request —
  // batch composition, bucket padding, and the block-diagonal mask are
  // invisible in the results.
  Rng wr(23);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  Rng fuzz(24);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Tensor> masks;
    std::vector<ServeRequest> requests;
    const int n = 8 + static_cast<int>(fuzz.NextBelow(10));
    for (int i = 0; i < n; ++i) {
      const int64_t tokens = 3 + static_cast<int64_t>(fuzz.NextBelow(14));
      ServeRequest req;
      req.x = Tensor::Random({tokens, 16}, fuzz);
      if (fuzz.NextBool(0.5)) {
        masks.push_back(MakeMask(tokens, fuzz));
      }
      requests.push_back(std::move(req));
    }
    // Wire masks after the vectors stop reallocating.
    size_t mask_idx = 0;
    for (ServeRequest& req : requests) {
      if (mask_idx < masks.size() && masks[mask_idx].dim(0) == req.x.dim(0)) {
        req.attn_mask = &masks[mask_idx];
        ++mask_idx;
      }
    }

    ScopedNumThreads threads(4);
    ServingEngineOptions unbatched;
    unbatched.num_streams = 1;
    unbatched.batch_window = 1;
    ServingEngine baseline(stack, unbatched);
    std::vector<Tensor> expected = baseline.Serve(requests);

    for (int window : {2, 5}) {
      for (int max_tokens : {24, 64}) {
        for (int streams : {1, 3}) {
          ServingEngineOptions options;
          options.num_streams = streams;
          options.batch_window = window;
          options.max_batch_tokens = max_tokens;
          ServingEngine engine(stack, options);
          std::vector<Tensor> outputs = engine.Serve(requests);
          ASSERT_EQ(outputs.size(), expected.size());
          for (size_t i = 0; i < outputs.size(); ++i) {
            ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i]))
                << "fuzz trial " << trial << " request " << i << " window " << window
                << " max_tokens " << max_tokens << " streams " << streams;
          }
        }
      }
    }
  }
}

TEST(RaggedBatchingTest, FfnStackBatchingMatchesEager) {
  Rng wr(25);
  PlannedFfnStack stack(3, 16, 64, wr);
  Rng rr(26);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 12; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({3 + 5 * (i % 4), 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions options;
  options.num_streams = 2;
  options.batch_window = 4;
  options.max_batch_tokens = 40;
  ServingEngine engine(stack, options);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], stack.ForwardEager(requests[i].x)))
        << "request " << i;
  }
  EXPECT_LT(engine.stats().batches, engine.stats().requests);
}

TEST(RaggedBatchingTest, PitBatchedServingMatchesSingleStreamBatched) {
  // PIT kernel selection sees the packed tile's sparsity, so batched PIT is
  // not bitwise against 1:1 PIT — the contract is stream-assignment
  // invariance at fixed batching knobs.
  Rng wr(27);
  PlannedFfnStack stack(2, 16, 64, wr);
  Rng rr(28);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 10; ++i) {
    ServeRequest req;
    req.x = Tensor::Random({4 + 3 * (i % 3), 16}, rr);
    requests.push_back(std::move(req));
  }
  ScopedNumThreads threads(4);
  ServingEngineOptions pit;
  pit.use_pit = true;
  pit.batch_window = 3;
  pit.max_batch_tokens = 32;
  pit.num_streams = 1;
  ServingEngine baseline(stack, pit);
  std::vector<Tensor> expected = baseline.Serve(requests);

  pit.num_streams = 3;
  ServingEngine engine(stack, pit);
  std::vector<Tensor> outputs = engine.Serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outputs[i], expected[i])) << "request " << i;
  }
}

TEST(RaggedBatchingTest, StatsReportBucketsUtilizationAndPlanReuse) {
  Rng wr(29);
  PlannedTransformerStack stack(2, 16, 2, 48, wr);
  RequestMix mix = BuildMix(16, {5, 9, 13}, 4, 30);

  // Single stream: claims (and therefore the batch -> stream mapping) are
  // deterministic, so the second-pass pure-hit assertions below cannot be
  // perturbed by which stream first meets a bucket.
  ScopedNumThreads threads(2);
  ServingEngineOptions options;
  options.num_streams = 1;
  options.batch_window = 4;
  options.max_batch_tokens = 40;
  ServingEngine engine(stack, options);
  engine.Serve(mix.requests);
  const ServingEngineStats& stats = engine.stats();

  EXPECT_EQ(stats.batch_window, 4);
  EXPECT_EQ(stats.max_batch_tokens, 40);
  EXPECT_GT(stats.batches, 0);
  EXPECT_LT(stats.batches, stats.requests);
  EXPECT_GT(stats.packed_utilization, 0.0);
  EXPECT_LE(stats.packed_utilization, 1.0);
  ASSERT_FALSE(stats.buckets.empty());
  int64_t bucket_requests = 0;
  int64_t prev_bucket = 0;
  for (const ServingBucketStats& b : stats.buckets) {
    EXPECT_GT(b.bucket, prev_bucket);  // ascending, distinct
    prev_bucket = b.bucket;
    // Power-of-two bucket grid, floored at 16.
    EXPECT_GE(b.bucket, 16);
    EXPECT_EQ(b.bucket & (b.bucket - 1), 0) << "bucket " << b.bucket;
    EXPECT_GE(b.requests, b.batches);
    EXPECT_GE(b.packed_tokens, b.batches);  // at least one real row per batch
    EXPECT_EQ(b.computed_tokens, b.batches * b.bucket);
    EXPECT_GE(b.plan_misses, 1);  // someone compiled the bucket's plan
    EXPECT_GE(b.pool_contexts_highwater, b.pool_contexts);
    EXPECT_GE(b.p99_latency_us, b.p50_latency_us);
    bucket_requests += b.requests;
  }
  EXPECT_EQ(bucket_requests, stats.requests);

  // A second pass over the same mix composes the same batches: pure plan-pool
  // hits, no new misses, unchanged pooled contexts.
  std::vector<int64_t> misses_before;
  for (const ServingBucketStats& b : stats.buckets) {
    misses_before.push_back(b.plan_misses);
  }
  const int64_t contexts_before = stats.pool_contexts;
  engine.Serve(mix.requests);
  const ServingEngineStats& again = engine.stats();
  EXPECT_EQ(again.pool_contexts, contexts_before);
  ASSERT_EQ(again.buckets.size(), misses_before.size());
  int64_t hits = 0;
  for (size_t i = 0; i < again.buckets.size(); ++i) {
    EXPECT_EQ(again.buckets[i].plan_misses, misses_before[i]) << "bucket " << i;
    hits += again.buckets[i].plan_hits;
  }
  EXPECT_GT(hits, 0);
}

TEST(RaggedBatchingTest, KnobsResolveFromOptionsThenEnvThenDefault) {
  Rng wr(31);
  PlannedFfnStack stack(1, 8, 16, wr);
  const char* saved_window = std::getenv("PIT_BATCH_WINDOW");
  const std::string saved_window_value = saved_window != nullptr ? saved_window : "";
  const char* saved_tokens = std::getenv("PIT_BATCH_TOKENS");
  const std::string saved_tokens_value = saved_tokens != nullptr ? saved_tokens : "";
  setenv("PIT_BATCH_WINDOW", "6", /*overwrite=*/1);
  setenv("PIT_BATCH_TOKENS", "96", /*overwrite=*/1);
  {
    // Explicit options win over the environment.
    ServingEngineOptions options;
    options.batch_window = 3;
    options.max_batch_tokens = 128;
    ServingEngine engine(stack, options);
    EXPECT_EQ(engine.batch_window(), 3);
    EXPECT_EQ(engine.max_batch_tokens(), 128);
  }
  {
    // No options: the strict-parsed environment knobs decide.
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.batch_window(), 6);
    EXPECT_EQ(engine.max_batch_tokens(), 96);
  }
  unsetenv("PIT_BATCH_WINDOW");
  unsetenv("PIT_BATCH_TOKENS");
  {
    // Neither: batching off (window 1) with the default token budget.
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.batch_window(), 1);
    EXPECT_EQ(engine.max_batch_tokens(), 512);
  }
  if (saved_window != nullptr) {
    setenv("PIT_BATCH_WINDOW", saved_window_value.c_str(), 1);
  }
  if (saved_tokens != nullptr) {
    setenv("PIT_BATCH_TOKENS", saved_tokens_value.c_str(), 1);
  }
}

// ---- fault containment (PR 9) ----------------------------------------------

// Rejecting a request must not perturb its batchmates: the queue excludes
// rejected requests before spans form, and the PR 6 contract makes the
// composition difference bitwise invisible — so a batched multi-stream run
// over valid + invalid traffic must reproduce the valid-only run's bits
// exactly, with every invalid request mapped to kInvalidArgument and an
// empty output.
TEST(FaultContainmentTest, InvalidRequestsRejectedWithoutPerturbingBatchmates) {
  Rng wr(401);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {5, 9, 16}, /*per_shape=*/4, /*seed=*/402);
  ServingEngineOptions options;
  options.num_streams = 3;
  options.batch_window = 3;
  options.max_batch_tokens = 64;

  ServingEngine clean_engine(stack, options);
  const std::vector<ServeOutcome> clean = clean_engine.ServeWithStatus(mix.requests);
  for (const ServeOutcome& outcome : clean) {
    ASSERT_EQ(outcome.status, ServeStatus::kOk);
  }

  // Interleave adversarial requests: NaN activations, a [tokens+1, tokens]
  // mask, a rank-3 mask, a non-finite mask, a wrong hidden dimension, a
  // negative deadline. Every one must reject at admission (satellite: mask
  // dimensions are validated up front, not deep inside a kernel).
  Rng bad_rng(403);
  std::vector<ServeRequest> traffic;
  std::vector<Tensor> bad_masks;
  bad_masks.reserve(3);
  bad_masks.push_back(MakeMask(7, bad_rng));  // vs 6 tokens: wrong dims
  bad_masks.push_back(Tensor::Random({6, 6, 1}, bad_rng));
  bad_masks.push_back(MakeMask(6, bad_rng));
  bad_masks.back()[0] = std::nanf("");
  std::vector<size_t> valid_at;
  auto push_invalid = [&](ServeRequest req) { traffic.push_back(std::move(req)); };
  for (size_t i = 0; i < mix.requests.size(); ++i) {
    if (i % 3 == 1) {
      ServeRequest bad;
      bad.x = Tensor::Random({6, 32}, bad_rng);
      switch (i % 4) {
        case 0:
        case 1:
          bad.attn_mask = &bad_masks[(i / 3) % 3];
          break;
        case 2:
          bad.x[5] = std::nanf("");
          break;
        default:
          bad.deadline_us = -1;
          break;
      }
      push_invalid(std::move(bad));
    }
    valid_at.push_back(traffic.size());
    traffic.push_back(mix.requests[i]);
  }
  {
    ServeRequest wrong_hidden;
    wrong_hidden.x = Tensor::Random({4, 16}, bad_rng);
    push_invalid(std::move(wrong_hidden));
  }
  {
    ServeRequest nan_mask;
    nan_mask.x = Tensor::Random({6, 32}, bad_rng);
    nan_mask.attn_mask = &bad_masks[2];  // well-shaped mask with a NaN entry
    push_invalid(std::move(nan_mask));
  }

  ServingEngine engine(stack, options);
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(traffic);
  ASSERT_EQ(outcomes.size(), traffic.size());
  size_t next_valid = 0;
  int64_t invalid = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (next_valid < valid_at.size() && valid_at[next_valid] == i) {
      ASSERT_EQ(outcomes[i].status, ServeStatus::kOk);
      ASSERT_NO_FATAL_FAILURE(
          ExpectBitwiseEqual(outcomes[i].output, clean[next_valid].output))
          << "rejected batchmates perturbed valid request " << next_valid;
      ++next_valid;
    } else {
      EXPECT_EQ(outcomes[i].status, ServeStatus::kInvalidArgument);
      EXPECT_TRUE(outcomes[i].output.empty());
      ++invalid;
    }
  }
  EXPECT_EQ(next_valid, clean.size());
  EXPECT_EQ(engine.stats().rejected_invalid, invalid);
}

// FFN stacks have no attention, so any mask is an admission error — the
// mask-rejection half of the admission-validation satellite.
TEST(FaultContainmentTest, FfnStackRejectsMaskedRequestsAtAdmission) {
  Rng wr(411);
  PlannedFfnStack stack(2, 16, 48, wr);
  Rng rng(412);
  const Tensor mask = MakeMask(6, rng);
  std::vector<ServeRequest> requests(2);
  requests[0].x = Tensor::Random({6, 16}, rng);
  requests[1].x = Tensor::Random({6, 16}, rng);
  requests[1].attn_mask = &mask;  // well-formed, but FFN stacks take none
  ServingEngine engine(stack, {});
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
  EXPECT_EQ(outcomes[0].status, ServeStatus::kOk);
  EXPECT_EQ(outcomes[1].status, ServeStatus::kInvalidArgument);
  EXPECT_EQ(engine.stats().rejected_invalid, 1);
}

// The bounded admission queue sheds in arrival order — deterministically, so
// callers can reason about which requests an overloaded engine drops — and
// shedding must not perturb the admitted requests' bits.
TEST(FaultContainmentTest, OverloadShedsBeyondQueueCapacityDeterministically) {
  Rng wr(421);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {5, 9}, /*per_shape=*/4, /*seed=*/422);
  const int64_t n = static_cast<int64_t>(mix.requests.size());
  constexpr int kQueue = 3;

  ServingEngineOptions clean_options;
  clean_options.num_streams = 2;
  clean_options.batch_window = 2;
  ServingEngine clean_engine(stack, clean_options);
  const std::vector<ServeOutcome> clean = clean_engine.ServeWithStatus(mix.requests);

  ServingEngineOptions options = clean_options;
  options.queue_capacity = kQueue;
  ServingEngine engine(stack, options);
  for (int pass = 0; pass < 2; ++pass) {
    const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(mix.requests);
    for (int64_t i = 0; i < n; ++i) {
      if (i < kQueue) {
        ASSERT_EQ(outcomes[static_cast<size_t>(i)].status, ServeStatus::kOk);
        ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outcomes[static_cast<size_t>(i)].output,
                                                   clean[static_cast<size_t>(i)].output));
      } else {
        EXPECT_EQ(outcomes[static_cast<size_t>(i)].status, ServeStatus::kRejectedOverload);
        EXPECT_TRUE(outcomes[static_cast<size_t>(i)].output.empty());
      }
    }
    EXPECT_EQ(engine.stats().rejected_overload, (pass + 1) * (n - kQueue));
  }
}

// A 1 us default deadline sweeps queued requests into kDeadlineExceeded at
// claim time; a per-request budget overrides the engine default, so a caller
// who asked for a generous deadline still completes. Which queued requests
// lapse is timing-dependent, but every status must be definite and every
// surviving output bitwise identical to the clean run.
TEST(FaultContainmentTest, DeadlineSweepShedsQueuedRequests) {
  Rng wr(431);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {9, 16}, /*per_shape=*/4, /*seed=*/432);
  ServingEngine clean_engine(stack, {});
  const std::vector<ServeOutcome> clean = clean_engine.ServeWithStatus(mix.requests);

  // The last request carries its own day-long budget: it must survive the
  // engine's 1 us default no matter how slow the sweep is.
  mix.requests.back().deadline_us = 86400000000LL;
  ScopedNumThreads threads(1);
  ServingEngineOptions options;
  options.num_streams = 1;
  options.deadline_us = 1;
  ServingEngine engine(stack, options);
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(mix.requests);
  int64_t timed_out = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].status == ServeStatus::kDeadlineExceeded) {
      EXPECT_TRUE(outcomes[i].output.empty());
      ++timed_out;
    } else {
      ASSERT_EQ(outcomes[i].status, ServeStatus::kOk);
      ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outcomes[i].output, clean[i].output));
    }
  }
  EXPECT_EQ(outcomes.back().status, ServeStatus::kOk);
  EXPECT_GE(timed_out, 1);
  EXPECT_EQ(engine.stats().timed_out, timed_out);
}

// Satellite regression: an empty Serve call and a fully-rejected Serve call
// must keep every stat finite — no 0/0 packed utilization, no percentile of
// an empty latency set, no NaN requests_per_sec.
TEST(FaultContainmentTest, ZeroRequestAndFullyRejectedServesKeepStatsFinite) {
  Rng wr(441);
  PlannedFfnStack stack(2, 16, 48, wr);
  ServingEngineOptions options;
  options.batch_window = 4;
  ServingEngine engine(stack, options);

  const std::vector<ServeOutcome> none = engine.ServeWithStatus({});
  EXPECT_TRUE(none.empty());
  const ServingEngineStats& s0 = engine.stats();
  EXPECT_EQ(s0.requests, 0);
  EXPECT_EQ(s0.batches, 0);
  EXPECT_EQ(s0.mean_latency_us, 0.0);
  EXPECT_EQ(s0.p50_latency_us, 0.0);
  EXPECT_EQ(s0.p99_latency_us, 0.0);
  EXPECT_TRUE(std::isfinite(s0.requests_per_sec));
  EXPECT_TRUE(std::isfinite(s0.packed_utilization));
  EXPECT_EQ(s0.packed_utilization, 1.0);

  Rng rng(442);
  std::vector<ServeRequest> invalid(3);
  for (ServeRequest& req : invalid) {
    req.x = Tensor::Random({4, 16}, rng);
    req.x[1] = std::nanf("");
  }
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(invalid);
  const ServingEngineStats& s1 = engine.stats();
  for (const ServeOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.status, ServeStatus::kInvalidArgument);
  }
  EXPECT_EQ(s1.rejected_invalid, 3);
  EXPECT_EQ(s1.requests_per_sec, 0.0);
  EXPECT_EQ(s1.mean_latency_us, 0.0);
  EXPECT_EQ(s1.p50_latency_us, 0.0);
  EXPECT_EQ(s1.p99_latency_us, 0.0);
  EXPECT_TRUE(std::isfinite(s1.packed_utilization));
  for (const ServingBucketStats& bucket : s1.buckets) {
    EXPECT_EQ(bucket.p50_latency_us, 0.0);
    EXPECT_EQ(bucket.p99_latency_us, 0.0);
  }
}

// Rate-1.0 injection at every site: transient faults (retries immune, the
// PIT_FAULT model) must leave every request kOk with bits identical to the
// fault-free run, and the ledger must reconcile exactly — every injected
// fault compensated by one retry or one degraded forward.
TEST(FaultContainmentTest, EverySiteTransientFaultSweepStaysBitwise) {
  Rng wr(451);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {5, 9, 16}, /*per_shape=*/2, /*seed=*/452);
  ServingEngineOptions options;
  options.num_streams = 4;
  options.batch_window = 3;
  options.max_batch_tokens = 64;
  std::vector<ServeOutcome> clean;
  {
    ServingEngine engine(stack, options);
    clean = engine.ServeWithStatus(mix.requests);
  }
  ScopedNumThreads threads(4);
  for (int site = 0; site < kNumFaultSites; ++site) {
    SCOPED_TRACE(FaultSiteName(static_cast<FaultSite>(site)));
    FaultInjectionConfig config;
    config.enabled = true;
    config.site_enabled[site] = true;
    config.rate = 1.0;
    config.seed = 1000 + static_cast<uint64_t>(site);
    config.stall_us = 2000;  // keep the stall leg wall-clock bounded
    ScopedFaultInjection fault(config);
    ServingEngine engine(stack, options);
    const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(mix.requests);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ASSERT_EQ(outcomes[i].status, ServeStatus::kOk);
      ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outcomes[i].output, clean[i].output));
    }
    const ServingEngineStats& stats = engine.stats();
    if (static_cast<FaultSite>(site) == FaultSite::kStall) {
      // A stall is a delay, not a failure: outputs stay bitwise, the fault
      // ledger stays empty, and the sleeps are tallied on their own counter.
      EXPECT_EQ(stats.faults_injected, 0);
      EXPECT_GT(stats.stalls_injected, 0);
    } else {
      EXPECT_GT(stats.faults_injected, 0);
      EXPECT_EQ(stats.internal_failures, 0);
      EXPECT_EQ(stats.faults_injected, stats.retries + stats.degraded_forwards);
    }
  }
}

// Persistent faults (fail_retries: the retry rung fails too) must exhaust the
// ladder into per-request kInternal — never an abort, never a hung request —
// and the engine must serve clean bitwise traffic again once injection stops.
TEST(FaultContainmentTest, PersistentFaultsEndInInternalThenRecover) {
  Rng wr(461);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  RequestMix mix = BuildMix(32, {5, 9}, /*per_shape=*/2, /*seed=*/462);
  ServingEngineOptions options;
  options.num_streams = 2;
  options.batch_window = 2;
  std::vector<ServeOutcome> clean;
  {
    ServingEngine engine(stack, options);
    clean = engine.ServeWithStatus(mix.requests);
  }
  for (FaultSite site : {FaultSite::kPlanCompile, FaultSite::kKernelDispatch}) {
    SCOPED_TRACE(FaultSiteName(site));
    ServingEngine engine(stack, options);
    {
      ScopedFaultInjection fault(site, 1.0, /*seed=*/77, /*fail_retries=*/true);
      const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(mix.requests);
      for (const ServeOutcome& outcome : outcomes) {
        EXPECT_EQ(outcome.status, ServeStatus::kInternal);
        EXPECT_TRUE(outcome.output.empty());
      }
      const ServingEngineStats& stats = engine.stats();
      EXPECT_GT(stats.internal_failures, 0);
      EXPECT_EQ(stats.faults_injected,
                stats.retries + stats.degraded_forwards + stats.internal_failures);
    }
    // Injection scope gone: the same engine must recover to clean bits.
    const std::vector<ServeOutcome> recovered = engine.ServeWithStatus(mix.requests);
    for (size_t i = 0; i < recovered.size(); ++i) {
      ASSERT_EQ(recovered[i].status, ServeStatus::kOk);
      ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(recovered[i].output, clean[i].output));
    }
    const ServingEngineStats& stats = engine.stats();
    EXPECT_EQ(stats.faults_injected,
              stats.retries + stats.degraded_forwards + stats.internal_failures);
  }
}

// The containment knobs resolve option > env > default, mirroring
// KnobsResolveFromOptionsThenEnvThenDefault for the batching knobs.
TEST(FaultContainmentTest, DeadlineAndQueueKnobsResolveFromOptionsThenEnvThenDefault) {
  Rng wr(471);
  PlannedFfnStack stack(1, 8, 16, wr);
  const char* saved_deadline = std::getenv("PIT_SERVE_DEADLINE_US");
  const std::string saved_deadline_value = saved_deadline != nullptr ? saved_deadline : "";
  const char* saved_queue = std::getenv("PIT_SERVE_QUEUE");
  const std::string saved_queue_value = saved_queue != nullptr ? saved_queue : "";
  setenv("PIT_SERVE_DEADLINE_US", "12345", /*overwrite=*/1);
  setenv("PIT_SERVE_QUEUE", "9", /*overwrite=*/1);
  {
    ServingEngineOptions options;
    options.deadline_us = 777;
    options.queue_capacity = 3;
    ServingEngine engine(stack, options);
    EXPECT_EQ(engine.deadline_us(), 777);
    EXPECT_EQ(engine.queue_capacity(), 3);
  }
  {
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.deadline_us(), 12345);
    EXPECT_EQ(engine.queue_capacity(), 9);
  }
  unsetenv("PIT_SERVE_DEADLINE_US");
  unsetenv("PIT_SERVE_QUEUE");
  {
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.deadline_us(), 0);
    EXPECT_EQ(engine.queue_capacity(), 0);
  }
  if (saved_deadline != nullptr) {
    setenv("PIT_SERVE_DEADLINE_US", saved_deadline_value.c_str(), 1);
  }
  if (saved_queue != nullptr) {
    setenv("PIT_SERVE_QUEUE", saved_queue_value.c_str(), 1);
  }
}

// ---- Liveness: in-flight deadlines, watchdog, drain (PR 10) ----------------

// Unmasked fixed-shape requests that pack into a single span (one claim, one
// forward) so batch-level cancellation counters are deterministic.
std::vector<ServeRequest> PackableRequests(int n, int64_t tokens, int64_t hidden, uint64_t seed) {
  Rng rng(seed);
  std::vector<ServeRequest> requests(n);
  for (ServeRequest& req : requests) {
    req.x = Tensor::Random({tokens, hidden}, rng);
  }
  return requests;
}

FaultInjectionConfig StallConfig(int64_t stall_us, uint64_t seed) {
  FaultInjectionConfig config;
  config.enabled = true;
  config.site_enabled[static_cast<int>(FaultSite::kStall)] = true;
  config.rate = 1.0;
  config.seed = seed;
  config.stall_us = stall_us;
  return config;
}

// Every member of the packed batch carries a deadline and every one lapses
// while the stall holds the batch in flight: the armed token must cancel the
// forward at a step boundary (one cancelled forward, not one per member) and
// release the whole batch as kDeadlineExceeded without completing.
TEST(LivenessTest, AllLapsedInFlightBatchIsCancelledAndReleased) {
  Rng wr(471);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  std::vector<ServeRequest> requests = PackableRequests(4, 8, 32, 472);
  for (ServeRequest& req : requests) {
    req.deadline_us = 100000;  // 100 ms, lapses under the 400 ms stall
  }
  ScopedFaultInjection fault(StallConfig(/*stall_us=*/400000, /*seed=*/473));
  ScopedNumThreads threads(1);
  ServingEngineOptions options;
  options.num_streams = 1;
  options.batch_window = 4;
  options.max_batch_tokens = 256;
  ServingEngine engine(stack, options);
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (const ServeOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.status, ServeStatus::kDeadlineExceeded);
    EXPECT_TRUE(outcome.output.empty());
  }
  const ServingEngineStats& stats = engine.stats();
  EXPECT_EQ(stats.timed_out_inflight, 4);
  EXPECT_EQ(stats.timed_out, 4);
  EXPECT_EQ(stats.cancelled_forwards, 1);  // one batch cancel, not four
  EXPECT_EQ(stats.stalls_injected, 1);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_EQ(stats.faults_injected, 0);  // stalls never enter the fault ledger
}

// A mixed batch (some members deadlined, some not) must NEVER be cancelled in
// flight: the forward completes for the survivors' sake, lapsed members are
// marked at egress without output, and surviving outputs stay bitwise
// identical to the fault-free run.
TEST(LivenessTest, PartialLapseMarksLapsedAtEgressAndKeepsSurvivorsBitwise) {
  Rng wr(481);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  std::vector<ServeRequest> requests = PackableRequests(4, 8, 32, 482);

  ServingEngine clean_engine(stack, {});
  const std::vector<ServeOutcome> clean = clean_engine.ServeWithStatus(requests);

  for (size_t i = 0; i < requests.size(); ++i) {
    if (i % 2 == 0) {
      requests[i].deadline_us = 100000;  // lapses under the 400 ms stall
    }
  }
  ScopedFaultInjection fault(StallConfig(/*stall_us=*/400000, /*seed=*/483));
  ScopedNumThreads threads(1);
  ServingEngineOptions options;
  options.num_streams = 1;
  options.batch_window = 4;
  options.max_batch_tokens = 256;
  ServingEngine engine(stack, options);
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(outcomes[i].status, ServeStatus::kDeadlineExceeded) << "request " << i;
      EXPECT_TRUE(outcomes[i].output.empty());
    } else {
      ASSERT_EQ(outcomes[i].status, ServeStatus::kOk) << "request " << i;
      ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outcomes[i].output, clean[i].output));
    }
  }
  const ServingEngineStats& stats = engine.stats();
  EXPECT_EQ(stats.cancelled_forwards, 0);  // the mixed batch must complete
  EXPECT_EQ(stats.timed_out_inflight, 2);
  EXPECT_EQ(stats.timed_out, 2);
}

// Watchdog in report mode: a stalled stream (silent past the threshold) must
// be detected and tallied without perturbing results — every request still
// completes kOk and bitwise identical to the clean run.
TEST(LivenessTest, WatchdogDetectsStallInReportModeWithoutPerturbingResults) {
  Rng wr(491);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  std::vector<ServeRequest> requests = PackableRequests(4, 8, 32, 492);

  ServingEngine clean_engine(stack, {});
  const std::vector<ServeOutcome> clean = clean_engine.ServeWithStatus(requests);

  ScopedFaultInjection fault(StallConfig(/*stall_us=*/150000, /*seed=*/493));
  ServingEngineOptions options;
  options.num_streams = 2;
  options.watchdog_us = 20000;  // 20 ms threshold, well under the 150 ms stall
  options.watchdog_mode = WatchdogMode::kReport;
  ServingEngine engine(stack, options);
  EXPECT_EQ(engine.watchdog_us(), 20000);
  EXPECT_EQ(engine.watchdog_mode(), WatchdogMode::kReport);
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_EQ(outcomes[i].status, ServeStatus::kOk);
    ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(outcomes[i].output, clean[i].output));
  }
  const ServingEngineStats& stats = engine.stats();
  EXPECT_GE(stats.stalls_detected, 1);
  EXPECT_GT(stats.stalls_injected, 0);
  EXPECT_GT(stats.stall_min_silence_us, engine.watchdog_us());
  EXPECT_GE(stats.stall_max_silence_us, stats.stall_min_silence_us);

  // Stats rendering carries the liveness counters.
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("stalls"), std::string::npos);
  EXPECT_NE(rendered.find("requests"), std::string::npos);
}

// Watchdog in abort mode is a fail-fast: a detected stall must bring the
// process down with the diagnostic on stderr.
TEST(LivenessTest, WatchdogAbortModeDiesOnStall) {
  Rng wr(501);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  std::vector<ServeRequest> requests = PackableRequests(2, 8, 32, 502);
  EXPECT_DEATH(
      {
        ScopedFaultInjection fault(StallConfig(/*stall_us=*/400000, /*seed=*/503));
        ServingEngineOptions options;
        options.num_streams = 1;
        options.watchdog_us = 10000;
        options.watchdog_mode = WatchdogMode::kAbort;
        ServingEngine engine(stack, options);
        (void)engine.ServeWithStatus(requests);
      },
      "WATCHDOG");
}

// Destroying the engine while a Serve is in flight must cancel cooperatively
// and join cleanly: no hang, no abort, and every request left with a definite
// status (completed kOk stays bitwise-valid, the rest are kCancelled).
TEST(LivenessTest, DestructorWithInFlightWorkCancelsAndJoins) {
  Rng wr(511);
  PlannedTransformerStack stack(2, 32, 4, 96, wr);
  std::vector<ServeRequest> requests = PackableRequests(8, 8, 32, 512);
  // Serve one request per claim so the drain has claim boundaries to land on,
  // and hold each claim under a stall so the destructor races real work.
  ScopedFaultInjection fault(StallConfig(/*stall_us=*/100000, /*seed=*/513));
  ServingEngineOptions options;
  options.num_streams = 1;
  options.batch_window = 1;
  auto engine = std::make_unique<ServingEngine>(stack, options);
  // The worker holds a raw pointer so the unique_ptr object itself is not
  // read concurrently with reset(); the engine's own Drain-before-destroy
  // keeps the pointee alive until ServeWithStatus returns.
  ServingEngine* raw = engine.get();
  std::vector<ServeOutcome> outcomes;
  std::thread server([&] { outcomes = raw->ServeWithStatus(requests); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.reset();  // destructor: Drain(kCancelInFlight) + watchdog shutdown
  server.join();
  ASSERT_EQ(outcomes.size(), requests.size());
  int cancelled = 0;
  for (const ServeOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status == ServeStatus::kOk ||
                outcome.status == ServeStatus::kCancelled)
        << "status " << ServeStatusName(outcome.status);
    if (outcome.status == ServeStatus::kCancelled) {
      EXPECT_TRUE(outcome.output.empty());
      ++cancelled;
    } else {
      EXPECT_FALSE(outcome.output.empty());
    }
  }
  // The 100 ms-per-claim stall guarantees the 30 ms-delayed destructor lands
  // before the tail of the queue was claimed.
  EXPECT_GE(cancelled, 1);
}

// Drain is idempotent and terminal: a second Drain is a no-op, and Serve after
// Drain rejects every request with a definite kCancelled status — no abort, no
// hang, stats still reconciled.
TEST(LivenessTest, DoubleDrainIsIdempotentAndServeAfterDrainIsRejected) {
  Rng wr(521);
  PlannedFfnStack stack(2, 16, 48, wr);
  ServingEngine engine(stack, {});
  EXPECT_FALSE(engine.drained());
  engine.Drain();
  EXPECT_TRUE(engine.drained());
  engine.Drain(DrainPolicy::kCancelInFlight);  // second drain: no-op
  EXPECT_TRUE(engine.drained());

  Rng rng(522);
  std::vector<ServeRequest> requests(3);
  for (ServeRequest& req : requests) {
    req.x = Tensor::Random({4, 16}, rng);
  }
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (const ServeOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.status, ServeStatus::kCancelled);
    EXPECT_TRUE(outcome.output.empty());
  }
  EXPECT_EQ(engine.stats().cancelled, 3);
  EXPECT_EQ(engine.stats().requests, 3);
}

TEST(LivenessTest, WatchdogKnobsResolveFromOptionsThenEnvThenDefault) {
  Rng wr(531);
  PlannedFfnStack stack(2, 16, 48, wr);
  const char* saved_us = std::getenv("PIT_WATCHDOG_US");
  const std::string saved_us_value = saved_us != nullptr ? saved_us : "";
  const char* saved_mode = std::getenv("PIT_WATCHDOG");
  const std::string saved_mode_value = saved_mode != nullptr ? saved_mode : "";
  setenv("PIT_WATCHDOG_US", "54321", 1);
  setenv("PIT_WATCHDOG", "abort", 1);
  {
    ServingEngineOptions options;
    options.watchdog_us = 777;
    options.watchdog_mode = WatchdogMode::kReport;
    ServingEngine engine(stack, options);
    EXPECT_EQ(engine.watchdog_us(), 777);
    EXPECT_EQ(engine.watchdog_mode(), WatchdogMode::kReport);
  }
  {
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.watchdog_us(), 54321);
    EXPECT_EQ(engine.watchdog_mode(), WatchdogMode::kAbort);
  }
  unsetenv("PIT_WATCHDOG_US");
  unsetenv("PIT_WATCHDOG");
  {
    ServingEngine engine(stack, {});
    EXPECT_EQ(engine.watchdog_us(), 0);  // watchdog off by default
    EXPECT_EQ(engine.watchdog_mode(), WatchdogMode::kReport);
  }
  if (saved_us != nullptr) {
    setenv("PIT_WATCHDOG_US", saved_us_value.c_str(), 1);
  }
  if (saved_mode != nullptr) {
    setenv("PIT_WATCHDOG", saved_mode_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace pit
