// Cross-module integration tests: whole pipelines exercising detection,
// selection, SRead/SWrite, kernels, baselines and workloads together.
#include <gtest/gtest.h>

#include "pit/baselines/engines.h"
#include "pit/core/compiler.h"
#include "pit/nn/modules.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/attention_masks.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/pruning.h"
#include "pit/workloads/seq_len.h"

namespace pit {
namespace {

// Dynamic sequence lengths: a batch embedded as [batch*max, hidden] with
// zero padding rows — PIT must produce the same result as dense while its
// plan shows only the effective rows executed.
TEST(IntegrationTest, PaddedBatchThroughPitMatchesDense) {
  Rng rng(1);
  auto lens = SampleBatchLens(DatasetSeqLens("mnli"), 8, rng);
  const int64_t max_len = MaxLen(lens);
  const int64_t hidden = 32;
  Tensor x = Tensor::Zeros({static_cast<int64_t>(lens.size()) * max_len, hidden});
  for (size_t s = 0; s < lens.size(); ++s) {
    for (int64_t t = 0; t < lens[s]; ++t) {
      for (int64_t j = 0; j < hidden; ++j) {
        x.At(static_cast<int64_t>(s) * max_len + t, j) = rng.NextFloat(-1.0f, 1.0f);
      }
    }
  }
  Tensor w = Tensor::Random({hidden, 16}, rng);
  PitCompiler compiler(V100());
  PitExecution exec = compiler.SparseMatmul(x, w);
  EXPECT_TRUE(AllClose(exec.output, MatMul(x, w), 1e-3f, 1e-4f));
  if (!exec.plan.fallback_dense) {
    EXPECT_LT(exec.plan.covered_fraction, 1.0);
  }
}

// ReLU-activation pipeline (the OPT FFN): dense up-projection, ReLU, PIT
// executes the sparse down-projection.
TEST(IntegrationTest, ReluActivationPipeline) {
  Rng rng(2);
  Tensor x = Tensor::Random({24, 16}, rng);
  Tensor w_up = Tensor::Random({16, 64}, rng);
  Tensor w_down = Tensor::Random({64, 16}, rng);
  Tensor act = Relu(MatMul(x, w_up));
  EXPECT_GT(act.SparsityRatio(), 0.2);
  PitCompiler compiler(V100());
  PitExecution exec = compiler.SparseMatmul(act, w_down);
  EXPECT_TRUE(AllClose(exec.output, MatMul(act, w_down), 1e-3f, 1e-4f));
}

// Dynamic sparse attention: scores masked by a Longformer mask; the masked
// scores are a dynamically sparse tensor PIT multiplies against V.
TEST(IntegrationTest, SparseAttentionScoresTimesValues) {
  Rng rng(3);
  LongformerMaskConfig config{64, 8, 2};
  Tensor mask = LongformerMask(config, rng);
  Tensor scores = Tensor::Random({64, 64}, rng, 0.0f, 1.0f);
  Tensor masked = ApplyMask(scores, mask);
  Tensor v = Tensor::Random({64, 16}, rng);
  PitCompiler compiler(V100());
  PitExecution exec = compiler.SparseMatmul(masked, v);
  EXPECT_TRUE(AllClose(exec.output, MatMul(masked, v), 1e-3f, 1e-4f));
}

// Sparse-training step: magnitude-pruned weight, masked matmul through every
// engine, all equal; then the weights drift and the mask changes (dynamic).
TEST(IntegrationTest, PruningStepAcrossEngines) {
  Rng rng(4);
  Tensor w = Tensor::Random({64, 64}, rng);
  PruningConfig config{32, 1, 0.9};
  Tensor mask = MagnitudePruneMask(w, config);
  Tensor sparse_w = ApplyMask(w, mask);
  Tensor x = Tensor::Random({16, 64}, rng);
  // x @ sparse_w^T form: use sparse_w as the A operand.
  Tensor ref = MatMul(sparse_w, Transpose2D(x));
  for (const auto& engine : MakeAllEngines()) {
    EXPECT_TRUE(AllClose(engine->Execute(sparse_w, Transpose2D(x)), ref, 1e-3f, 1e-4f))
        << engine->name();
  }
  PerturbWeights(&w, 0.3f, rng);
  Tensor mask2 = MagnitudePruneMask(w, config);
  EXPECT_GT(MaskChurn(mask, mask2), 0.0);
}

// Full MoE layer through the nn module with realistic routing skew.
TEST(IntegrationTest, MoELayerEndToEnd) {
  Rng rng(5);
  const int64_t tokens = 64, hidden = 16;
  MoELayer moe(hidden, 32, 8, rng);
  Tensor x = Tensor::Random({tokens, hidden}, rng);
  Tensor ref = moe.ForwardDense(x);
  EXPECT_TRUE(AllClose(moe.ForwardPit(x), ref, 1e-3f, 1e-4f));
  EXPECT_TRUE(AllClose(moe.ForwardPadded(x), ref, 1e-3f, 1e-4f));
  // Router produces a non-degenerate distribution.
  auto loads = ExpertLoads(moe.Route(x), moe.num_experts());
  int nonzero_experts = 0;
  for (int64_t l : loads) {
    nonzero_experts += l > 0 ? 1 : 0;
  }
  EXPECT_GE(nonzero_experts, 2);
}

// A two-layer encoder with PIT-executed FFNs: stacked sparse executions stay
// numerically aligned with the dense model.
TEST(IntegrationTest, StackedEncoderLayersSparseVsDense) {
  Rng rng(6);
  TransformerEncoderLayer l1(16, 4, 48, rng);
  TransformerEncoderLayer l2(16, 4, 48, rng);
  Tensor x = Tensor::Random({12, 16}, rng);
  Tensor dense = l2.Forward(l1.Forward(x));
  PitCompiler compiler(V100());
  Tensor sparse = l2.ForwardSparse(l1.ForwardSparse(x, compiler), compiler);
  EXPECT_TRUE(AllClose(sparse, dense, 5e-3f, 1e-3f));
}

// The compiler's cost must track the actual sparsity: higher sparsity, lower
// simulated latency for the same shapes.
TEST(IntegrationTest, SimulatedCostTracksSparsity) {
  PitCompiler compiler(V100());
  Rng rng(7);
  // At 90% element sparsity the selector legitimately stays dense (Fig. 3a:
  // element-wise sparsity pays off only near 99%+); at 99.5% the sparse plan
  // must win, so the simulated cost has to drop.
  Tensor b = Tensor::Random({1024, 64}, rng);
  Tensor a_lo = Tensor::RandomSparse({1024, 1024}, 0.9, rng);
  Tensor a_hi = Tensor::RandomSparse({1024, 1024}, 0.995, rng);
  const double lo = compiler.SparseMatmul(a_lo, b).plan.cost.Total();
  const double hi = compiler.SparseMatmul(a_hi, b).plan.cost.Total();
  EXPECT_LT(hi, lo);
}

}  // namespace
}  // namespace pit
