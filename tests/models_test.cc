#include <gtest/gtest.h>

#include "pit/runtime/models.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/seq_len.h"

namespace pit {
namespace {

std::vector<int64_t> MnliLens(int64_t batch, uint64_t seed = 1) {
  Rng rng(seed);
  return SampleBatchLens(DatasetSeqLens("mnli"), batch, rng);
}

MoeRunConfig MakeMoe(int experts, int64_t tokens, int64_t moe_layers, uint64_t seed = 2) {
  Rng rng(seed);
  MoeRunConfig config;
  config.num_experts = experts;
  MoeRoutingConfig routing{experts, 0.8};
  for (int64_t l = 0; l < moe_layers; ++l) {
    config.layer_loads.push_back(ExpertLoads(RouteTokens(tokens, routing, rng), experts));
  }
  return config;
}

// ---- BERT (Fig. 11) ---------------------------------------------------------

TEST(BertRunTest, PitFasterThanPyTorch) {
  CostModel model(V100());
  auto lens = MnliLens(32);
  const double pt = TransformerRun(model, Engine::kPyTorch, BertBase(), lens).cost.Total();
  const double pit = TransformerRun(model, Engine::kPit, BertBase(), lens).cost.Total();
  EXPECT_GT(pt / pit, 1.3);  // paper: 1.3x–4.9x
  EXPECT_LT(pt / pit, 6.0);
}

TEST(BertRunTest, TurboBetweenPyTorchAndPit) {
  CostModel model(V100());
  auto lens = MnliLens(32);
  const double pt = TransformerRun(model, Engine::kPyTorch, BertBase(), lens).cost.Total();
  const double turbo =
      TransformerRun(model, Engine::kTurboTransformer, BertBase(), lens).cost.Total();
  const double pit = TransformerRun(model, Engine::kPit, BertBase(), lens).cost.Total();
  EXPECT_LT(turbo, pt);
  EXPECT_LT(pit, turbo);
}

TEST(BertRunTest, PyTorchSConvertVisibleButBounded) {
  CostModel model(V100());
  auto lens = MnliLens(32);
  ModelRunCost pts = TransformerRun(model, Engine::kPyTorchS, BertBase(), lens);
  EXPECT_GT(pts.cost.convert_us, 0.0);
  EXPECT_LT(pts.cost.convert_us, pts.cost.Total() * 0.5);
}

TEST(BertRunTest, PitConvertShareTiny) {
  // Fig. 19: PIT's conversion is 0.7–1.1% of e2e latency.
  CostModel model(V100());
  auto lens = MnliLens(32);
  ModelRunCost pit = TransformerRun(model, Engine::kPit, BertBase(), lens);
  EXPECT_LT(pit.cost.index_us / pit.cost.Total(), 0.05);
}

TEST(BertRunTest, PitUsesLessMemoryThanPyTorch) {
  CostModel model(V100());
  auto lens = MnliLens(32);
  EXPECT_LT(TransformerRun(model, Engine::kPit, BertBase(), lens).memory_bytes,
            TransformerRun(model, Engine::kPyTorch, BertBase(), lens).memory_bytes);
}

TEST(BertRunTest, TrainingCostsMoreThanInference) {
  CostModel model(V100());
  auto lens = MnliLens(8);
  const double inf = TransformerRun(model, Engine::kPyTorch, BertBase(), lens, false).cost.Total();
  const double trn = TransformerRun(model, Engine::kPyTorch, BertBase(), lens, true).cost.Total();
  EXPECT_GT(trn / inf, 2.0);
  EXPECT_LT(trn / inf, 4.0);
}

// ---- Switch Transformer (Fig. 8) ---------------------------------------------

TEST(SwitchTest, PitBeatsAllBaselines) {
  CostModel model(A100());
  auto lens = MnliLens(32);
  MoeRunConfig moe = MakeMoe(128, SumLens(lens), 6);
  const double pit = SwitchTransformerRun(model, Engine::kPit, SwitchDims(), lens, moe).cost.Total();
  for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kTutel, Engine::kDeepSpeed,
                   Engine::kMegaBlocks}) {
    const double base = SwitchTransformerRun(model, e, SwitchDims(), lens, moe).cost.Total();
    EXPECT_GT(base / pit, 1.1) << EngineName(e);
  }
}

TEST(SwitchTest, SpeedupGrowsWithExpertCount) {
  // Fig. 8: PyTorch/Tutel degrade as experts grow; PIT stays near-flat.
  CostModel model(A100());
  auto lens = MnliLens(32);
  double prev_ratio = 0.0;
  for (int experts : {64, 128, 256}) {
    MoeRunConfig moe = MakeMoe(experts, SumLens(lens), 6);
    const double pt =
        SwitchTransformerRun(model, Engine::kPyTorch, SwitchDims(), lens, moe).cost.Total();
    const double pit =
        SwitchTransformerRun(model, Engine::kPit, SwitchDims(), lens, moe).cost.Total();
    const double ratio = pt / pit;
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 3.0);  // paper: 3.6x–18.1x for fp32
}

TEST(SwitchTest, TutelPaddingWasteExceedsPit) {
  CostModel model(A100());
  auto lens = MnliLens(32);
  MoeRunConfig moe = MakeMoe(256, SumLens(lens), 6);
  ModelRunCost tutel = SwitchTransformerRun(model, Engine::kTutel, SwitchDims(), lens, moe);
  ModelRunCost pit = SwitchTransformerRun(model, Engine::kPit, SwitchDims(), lens, moe);
  EXPECT_GT(tutel.cost.Total() / pit.cost.Total(), 3.0);  // paper: up to 59.1x
  EXPECT_GT(tutel.memory_bytes, pit.memory_bytes);
}

TEST(SwitchTest, TutelOomsAtLargeScale) {
  // At 256 experts the capacity-padded dispatch buffers push Tutel over the
  // device limit while PIT's exact-token buffers stay within it (Fig. 8b).
  CostModel model(A100());
  auto lens = MnliLens(32);
  MoeRunConfig moe = MakeMoe(256, SumLens(lens), 6);
  moe.device_memory_bytes = 32ll << 30;
  EXPECT_TRUE(SwitchTransformerRun(model, Engine::kTutel, SwitchDims(), lens, moe).oom);
  EXPECT_FALSE(SwitchTransformerRun(model, Engine::kPit, SwitchDims(), lens, moe).oom);
}

TEST(SwitchTest, MoEGainDominatesAblation) {
  // "PIT w/o Sparse MoE" shows most of the win comes from the MoE path.
  CostModel model(A100());
  auto lens = MnliLens(32);
  MoeRunConfig moe = MakeMoe(128, SumLens(lens), 6);
  const double pit = SwitchTransformerRun(model, Engine::kPit, SwitchDims(), lens, moe).cost.Total();
  const double ablate =
      SwitchTransformerRun(model, Engine::kPitNoSparseMoe, SwitchDims(), lens, moe).cost.Total();
  const double pytorch =
      SwitchTransformerRun(model, Engine::kPyTorch, SwitchDims(), lens, moe).cost.Total();
  EXPECT_GT(ablate, pit);
  EXPECT_GT((pytorch - ablate) / (pytorch - pit), 0.0);
  EXPECT_LT((pytorch / ablate), (pytorch / pit));
}

// ---- Swin-MoE (Fig. 9) --------------------------------------------------------

TEST(SwinMoeTest, GainsSmallerThanSwitch) {
  CostModel model(A100(), Precision::kFp16);
  MoeRunConfig moe = MakeMoe(16, 32 * 196, 6);
  const double pt =
      SwinMoeRun(model, Engine::kPyTorch, SwinMoeDims(), 32, 196, moe).cost.Total();
  const double pit = SwinMoeRun(model, Engine::kPit, SwinMoeDims(), 32, 196, moe).cost.Total();
  const double ratio = pt / pit;
  EXPECT_GT(ratio, 1.1);  // paper: 1.5x–6.3x
  EXPECT_LT(ratio, 8.0);
}

TEST(SwinMoeTest, MegaBlocksCompetitiveButBehindPit) {
  CostModel model(A100(), Precision::kFp16);
  MoeRunConfig moe = MakeMoe(32, 32 * 196, 6);
  const double mb =
      SwinMoeRun(model, Engine::kMegaBlocks, SwinMoeDims(), 32, 196, moe).cost.Total();
  const double pit = SwinMoeRun(model, Engine::kPit, SwinMoeDims(), 32, 196, moe).cost.Total();
  EXPECT_GT(mb / pit, 1.0);
  EXPECT_LT(mb / pit, 2.5);  // paper: 1.1x–1.4x e2e
}

// ---- OPT (Fig. 10 / Fig. 14) ---------------------------------------------------

TEST(OptTest, InferenceSpeedupInPaperBand) {
  CostModel model(V100());
  Rng rng(3);
  auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 32, rng);
  OptRunConfig config;
  const double pt = OptRun(model, Engine::kPyTorch, OptDims("13B"), lens, config).cost.Total();
  const double pit = OptRun(model, Engine::kPit, OptDims("13B"), lens, config).cost.Total();
  EXPECT_GT(pt / pit, 1.5);  // paper: 2.1x–2.3x
  EXPECT_LT(pt / pit, 5.0);
}

TEST(OptTest, ActivationSparsityAddsOnTopOfPadding) {
  // PIT w/o activation captures only the padding gain; full PIT adds the
  // ReLU-sparsity gain (paper: extra 1.3x–1.4x).
  CostModel model(V100());
  Rng rng(4);
  auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 32, rng);
  OptRunConfig config;
  const double no_act =
      OptRun(model, Engine::kPitNoActivation, OptDims("13B"), lens, config).cost.Total();
  const double full = OptRun(model, Engine::kPit, OptDims("13B"), lens, config).cost.Total();
  EXPECT_GT(no_act / full, 1.1);
  EXPECT_LT(no_act / full, 2.0);
}

TEST(OptTest, PyTorchSWorstDueToConversion) {
  CostModel model(V100());
  Rng rng(5);
  auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 32, rng);
  OptRunConfig config;
  const double pts = OptRun(model, Engine::kPyTorchS, OptDims("13B"), lens, config).cost.Total();
  const double pt = OptRun(model, Engine::kPyTorch, OptDims("13B"), lens, config).cost.Total();
  EXPECT_GT(pts, pt * 0.9);  // paper: PyTorch-S has the highest latency
}

TEST(OptTest, TrainingSpeedupBand) {
  CostModel model(A100());
  Rng rng(6);
  auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 8, rng);
  OptRunConfig config;
  config.training = true;
  const double pt = OptRun(model, Engine::kPyTorch, OptDims("1.3B"), lens, config).cost.Total();
  const double pit = OptRun(model, Engine::kPit, OptDims("1.3B"), lens, config).cost.Total();
  EXPECT_GT(pt / pit, 1.4);  // paper: 1.9x–2.4x
  EXPECT_LT(pt / pit, 4.0);
}

// ---- Sparse attention (Fig. 12 / Fig. 13) --------------------------------------

TEST(SparseAttentionTest, PitFastestOnLongformer) {
  CostModel model(V100());
  SparseAttentionRunConfig config;
  config.seq_len = 4096;
  config.batch = 1;
  config.mask_density = 0.08;
  config.block32_density = 0.18;
  const double pit =
      SparseAttentionRun(model, Engine::kPit, LongformerBase(), config).cost.Total();
  for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kDeepSpeed,
                   Engine::kLongformerS}) {
    EXPECT_GT(SparseAttentionRun(model, e, LongformerBase(), config).cost.Total() / pit, 1.05)
        << EngineName(e);
  }
}

TEST(SparseAttentionTest, LongformerSBeatsGenericSparse) {
  CostModel model(V100());
  SparseAttentionRunConfig config;
  config.seq_len = 4096;
  config.mask_density = 0.08;
  config.block32_density = 0.20;
  const double lfs =
      SparseAttentionRun(model, Engine::kLongformerS, LongformerBase(), config).cost.Total();
  const double pts =
      SparseAttentionRun(model, Engine::kPyTorchS, LongformerBase(), config).cost.Total();
  EXPECT_LT(lfs, pts);
}

TEST(SparseAttentionTest, BaselinesOomOnLongSequences) {
  // Museformer at 32k: PyTorch crashes OOM; PIT survives (Fig. 13).
  CostModel model(V100());
  SparseAttentionRunConfig config;
  config.seq_len = 32768;
  config.batch = 1;
  config.mask_density = 0.01;
  config.block32_density = 0.05;
  config.device_memory_bytes = 32ll << 30;
  EXPECT_TRUE(SparseAttentionRun(model, Engine::kPyTorch, MuseformerDims(), config).oom);
  EXPECT_FALSE(SparseAttentionRun(model, Engine::kPit, MuseformerDims(), config).oom);
}

TEST(SparseAttentionTest, MemoryOrderingPitLowest) {
  CostModel model(V100());
  SparseAttentionRunConfig config;
  config.seq_len = 8192;
  config.mask_density = 0.02;
  config.block32_density = 0.08;
  const int64_t pit = SparseAttentionRun(model, Engine::kPit, MuseformerDims(), config).memory_bytes;
  for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kDeepSpeed}) {
    EXPECT_LT(pit, SparseAttentionRun(model, e, MuseformerDims(), config).memory_bytes)
        << EngineName(e);
  }
}

// ---- Sparse training (Fig. 15) --------------------------------------------------

TEST(SparseTrainingTest, SpeedupBandsAtCoarseGranularity) {
  CostModel model(V100());
  SparseTrainingRunConfig config;
  config.block_rows = 32;
  config.block_cols = 64;
  config.sparsity = 0.9;
  const double pt =
      SparseTrainingRun(model, Engine::kPyTorch, BertBase(), config).cost.Total();
  const double pts =
      SparseTrainingRun(model, Engine::kPyTorchS, BertBase(), config).cost.Total();
  const double pit = SparseTrainingRun(model, Engine::kPit, BertBase(), config).cost.Total();
  EXPECT_GT(pt / pit, 1.2);   // paper: 1.5x–3.0x
  EXPECT_GT(pts / pit, 1.1);  // paper: 1.7x–2.2x (index rebuild overhead)
}

TEST(SparseTrainingTest, FineGranularityHurtsPyTorchSNotPit) {
  // Paper: at 32x1, PIT keeps the 32x64 speed while PyTorch-S degrades badly.
  CostModel model(V100());
  SparseTrainingRunConfig coarse{32, 128, 32, 64, 0.94};
  SparseTrainingRunConfig fine{32, 128, 32, 1, 0.94};
  const double pit_coarse =
      SparseTrainingRun(model, Engine::kPit, BertBase(), coarse).cost.Total();
  const double pit_fine = SparseTrainingRun(model, Engine::kPit, BertBase(), fine).cost.Total();
  EXPECT_NEAR(pit_fine / pit_coarse, 1.0, 0.1);
  const double pts_coarse =
      SparseTrainingRun(model, Engine::kPyTorchS, BertBase(), coarse).cost.Total();
  const double pts_fine =
      SparseTrainingRun(model, Engine::kPyTorchS, BertBase(), fine).cost.Total();
  EXPECT_GT(pts_fine / pts_coarse, 1.5);
}

TEST(SparseTrainingTest, PitMemoryDropsWithSparsityOthersFlat) {
  CostModel model(V100());
  SparseTrainingRunConfig lo{32, 128, 32, 64, 0.5};
  SparseTrainingRunConfig hi{32, 128, 32, 64, 0.98};
  const int64_t pit_lo = SparseTrainingRun(model, Engine::kPit, BertBase(), lo).memory_bytes;
  const int64_t pit_hi = SparseTrainingRun(model, Engine::kPit, BertBase(), hi).memory_bytes;
  EXPECT_LT(pit_hi, pit_lo);
  const int64_t pt_lo = SparseTrainingRun(model, Engine::kPyTorch, BertBase(), lo).memory_bytes;
  const int64_t pt_hi = SparseTrainingRun(model, Engine::kPyTorch, BertBase(), hi).memory_bytes;
  EXPECT_EQ(pt_lo, pt_hi);
}

// ---- dims sanity -----------------------------------------------------------------

TEST(DimsTest, OptFamilyGrowsMonotonically) {
  const char* sizes[] = {"125M", "350M", "1.3B", "13B", "30B"};
  int64_t prev = 0;
  for (const char* s : sizes) {
    TransformerDims d = OptDims(s);
    const int64_t params = d.layers * (4 * d.hidden * d.hidden + 2 * d.hidden * d.ffn_hidden);
    EXPECT_GT(params, prev) << s;
    prev = params;
  }
}

}  // namespace
}  // namespace pit
