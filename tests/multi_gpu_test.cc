#include <gtest/gtest.h>

#include "pit/runtime/multi_gpu.h"
#include "pit/workloads/seq_len.h"

namespace pit {
namespace {

ModelRunCost SingleOpt(Engine engine, std::vector<int64_t>* lens_out) {
  CostModel model(V100());
  Rng rng(1);
  auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 32, rng);
  if (lens_out != nullptr) {
    *lens_out = lens;
  }
  OptRunConfig config;
  return OptRun(model, engine, OptDims("13B"), lens, config);
}

TEST(MultiGpuTest, RingAllReduceLaws) {
  TensorParallelConfig config;
  config.num_gpus = 1;
  EXPECT_EQ(RingAllReduceUs(1 << 20, config), 0.0);
  config.num_gpus = 8;
  const double t8 = RingAllReduceUs(1 << 20, config);
  EXPECT_GT(t8, 0.0);
  // Payload doubling ~doubles the bandwidth term.
  const double t8_2x = RingAllReduceUs(2 << 20, config);
  EXPECT_GT(t8_2x, t8 * 1.5);
  // More GPUs move asymptotically 2x the payload per link: bounded growth.
  config.num_gpus = 64;
  EXPECT_LT(RingAllReduceUs(1 << 20, config), t8 * 1.5);
}

TEST(MultiGpuTest, TensorParallelSpeedsUpButSublinearly) {
  std::vector<int64_t> lens;
  ModelRunCost single = SingleOpt(Engine::kPyTorch, &lens);
  TensorParallelConfig config;
  config.num_gpus = 8;
  ModelRunCost tp = TensorParallel(single, OptDims("13B"), SumLens(lens), config,
                                   Precision::kFp32);
  EXPECT_LT(tp.cost.Total(), single.cost.Total());
  const double speedup = single.cost.Total() / tp.cost.Total();
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 8.0);  // communication + launches keep it sublinear
}

TEST(MultiGpuTest, PerDeviceMemoryShards) {
  std::vector<int64_t> lens;
  ModelRunCost single = SingleOpt(Engine::kPyTorch, &lens);
  TensorParallelConfig config;
  config.num_gpus = 8;
  ModelRunCost tp =
      TensorParallel(single, OptDims("13B"), SumLens(lens), config, Precision::kFp32);
  EXPECT_EQ(tp.memory_bytes, single.memory_bytes / 8);
  // OPT-13B fits 8x V100-32GB after sharding (Table 2's configuration).
  EXPECT_LT(tp.memory_bytes, 32ll << 30);
}

TEST(MultiGpuTest, EngineOrderingPreservedUnderTp) {
  std::vector<int64_t> lens;
  ModelRunCost pt = SingleOpt(Engine::kPyTorch, &lens);
  ModelRunCost pit = SingleOpt(Engine::kPit, nullptr);
  TensorParallelConfig config;
  config.num_gpus = 8;
  const int64_t tokens = SumLens(lens);
  ModelRunCost pt_tp = TensorParallel(pt, OptDims("13B"), tokens, config, Precision::kFp32);
  ModelRunCost pit_tp = TensorParallel(pit, OptDims("13B"), tokens, config, Precision::kFp32);
  EXPECT_GT(pt_tp.cost.Total() / pit_tp.cost.Total(), 1.5);
}

TEST(MultiGpuTest, TrainingDoublesCollectives) {
  std::vector<int64_t> lens;
  ModelRunCost single = SingleOpt(Engine::kPyTorch, &lens);
  TensorParallelConfig config;
  config.num_gpus = 8;
  const int64_t tokens = SumLens(lens);
  ModelRunCost inf = TensorParallel(single, OptDims("13B"), tokens, config, Precision::kFp32,
                                    /*training=*/false);
  ModelRunCost trn = TensorParallel(single, OptDims("13B"), tokens, config, Precision::kFp32,
                                    /*training=*/true);
  EXPECT_GT(trn.cost.memory_us, inf.cost.memory_us);
}

}  // namespace
}  // namespace pit
