#include <gtest/gtest.h>

#include "pit/runtime/serving.h"

namespace pit {
namespace {

ServingConfig QuickConfig() {
  ServingConfig config;
  config.num_requests = 200;
  config.arrival_rate_rps = 150.0;
  config.max_batch = 16;
  config.max_wait_us = 20000.0;
  return config;
}

TEST(ServingTest, AllRequestsServed) {
  CostModel model(V100());
  Rng rng(1);
  ServingStats stats = SimulateServing(model, Engine::kPyTorch, BertBase(),
                                       DatasetSeqLens("mnli"), QuickConfig(), rng);
  EXPECT_EQ(stats.requests, 200);
  EXPECT_GT(stats.batches, 0);
  EXPECT_LE(stats.batches, 200);
  EXPECT_GT(stats.mean_latency_us, 0.0);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
  EXPECT_GE(stats.mean_latency_us, stats.p50_latency_us * 0.3);
}

TEST(ServingTest, DeterministicForSeed) {
  CostModel model(V100());
  Rng r1(7), r2(7);
  ServingStats a = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("mnli"),
                                   QuickConfig(), r1);
  ServingStats b = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("mnli"),
                                   QuickConfig(), r2);
  EXPECT_DOUBLE_EQ(a.p99_latency_us, b.p99_latency_us);
  EXPECT_EQ(a.batches, b.batches);
}

TEST(ServingTest, PitBeatsPyTorchUnderLoad) {
  // The per-batch win compounds through queueing: PIT must improve both the
  // median and the tail, and sustain higher throughput.
  CostModel model(V100());
  Rng r1(3), r2(3);
  ServingStats pt = SimulateServing(model, Engine::kPyTorch, BertBase(), DatasetSeqLens("mnli"),
                                    QuickConfig(), r1);
  ServingStats pit = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("mnli"),
                                     QuickConfig(), r2);
  EXPECT_LT(pit.p50_latency_us, pt.p50_latency_us);
  EXPECT_LT(pit.p99_latency_us, pt.p99_latency_us);
  // Below saturation throughput is arrival-bound and equal for everyone;
  // at a saturating rate PIT's shorter batches serve strictly more rps.
  ServingConfig saturated = QuickConfig();
  saturated.arrival_rate_rps = 5000.0;
  Rng r3(3), r4(3);
  ServingStats pt_sat = SimulateServing(model, Engine::kPyTorch, BertBase(),
                                        DatasetSeqLens("mnli"), saturated, r3);
  ServingStats pit_sat = SimulateServing(model, Engine::kPit, BertBase(),
                                         DatasetSeqLens("mnli"), saturated, r4);
  EXPECT_GT(pit_sat.ThroughputRps(), pt_sat.ThroughputRps());
}

TEST(ServingTest, LatencyGrowsWithArrivalRate) {
  CostModel model(V100());
  ServingConfig slow = QuickConfig(), fast = QuickConfig();
  slow.arrival_rate_rps = 20.0;
  fast.arrival_rate_rps = 500.0;
  Rng r1(5), r2(5);
  ServingStats low = SimulateServing(model, Engine::kPyTorch, BertBase(),
                                     DatasetSeqLens("mnli"), slow, r1);
  ServingStats high = SimulateServing(model, Engine::kPyTorch, BertBase(),
                                      DatasetSeqLens("mnli"), fast, r2);
  EXPECT_GT(high.p99_latency_us, low.p99_latency_us);
}

TEST(ServingTest, BiggerBatchFewerBatches) {
  CostModel model(V100());
  ServingConfig small = QuickConfig(), big = QuickConfig();
  small.max_batch = 4;
  big.max_batch = 64;
  Rng r1(9), r2(9);
  ServingStats s = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("mnli"),
                                   small, r1);
  ServingStats b = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("mnli"),
                                   big, r2);
  EXPECT_GT(s.batches, b.batches);
}

TEST(ServingTest, UtilizationBounded) {
  CostModel model(V100());
  Rng rng(11);
  ServingStats stats = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("qqp"),
                                       QuickConfig(), rng);
  EXPECT_GT(stats.Utilization(), 0.0);
  EXPECT_LE(stats.Utilization(), 1.0 + 1e-9);
}

// Regression for the p50 off-by-one: nearest-rank on a hand-computed vector.
// index = ceil(q*n) - 1, so p50 of an even-sized sample is the n/2-th value
// (1-based), NOT the (n/2 + 1)-th that `latencies[size/2]` used to read.
TEST(ServingTest, PercentileNearestRankHandComputed) {
  const std::vector<double> even{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(even, 0.5), 20.0);   // ceil(2)-1 = idx 1
  EXPECT_DOUBLE_EQ(PercentileNearestRank(even, 0.25), 10.0);  // ceil(1)-1 = idx 0
  EXPECT_DOUBLE_EQ(PercentileNearestRank(even, 0.99), 40.0);  // ceil(3.96)-1 = idx 3
  EXPECT_DOUBLE_EQ(PercentileNearestRank(even, 1.0), 40.0);

  const std::vector<double> odd{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(odd, 0.5), 3.0);  // ceil(2.5)-1 = idx 2
  EXPECT_DOUBLE_EQ(PercentileNearestRank(odd, 0.2), 1.0);  // ceil(1)-1 = idx 0
  EXPECT_DOUBLE_EQ(PercentileNearestRank(odd, 0.21), 2.0);  // ceil(1.05)-1 = idx 1

  const std::vector<double> single{7.5};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(single, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(single, 0.99), 7.5);

  // 100 values 1..100: p99 is the 99th value (index 98), not the 100th.
  std::vector<double> hundred(100);
  for (size_t i = 0; i < hundred.size(); ++i) {
    hundred[i] = static_cast<double>(i + 1);
  }
  EXPECT_DOUBLE_EQ(PercentileNearestRank(hundred, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(hundred, 0.5), 50.0);
}

// p50/p99 reported by the simulator agree with the helper applied to the
// definitionally-sorted latency set (both percentiles share one code path).
TEST(ServingTest, SimulatorPercentilesAreNearestRank) {
  CostModel model(V100());
  Rng rng(13);
  ServingStats stats = SimulateServing(model, Engine::kPit, BertBase(), DatasetSeqLens("mnli"),
                                       QuickConfig(), rng);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
  EXPECT_GE(stats.p50_latency_us, 0.0);
}

}  // namespace
}  // namespace pit
