#include <gtest/gtest.h>

#include <cmath>

#include "pit/nn/autograd.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/pruning.h"

namespace pit {
namespace {

// Central finite difference of L = 0.5*||A*B||^2 w.r.t. one element.
float NumericalGrad(Tensor a, Tensor b, bool wrt_a, int64_t idx) {
  const float eps = 1e-3f;
  auto loss = [&](const Tensor& aa, const Tensor& bb) {
    Tensor c = MatMul(aa, bb);
    float l = 0.0f;
    for (int64_t i = 0; i < c.size(); ++i) {
      l += 0.5f * c[i] * c[i];
    }
    return l;
  };
  Tensor& target = wrt_a ? a : b;
  target[idx] += eps;
  const float hi = loss(a, b);
  target[idx] -= 2 * eps;
  const float lo = loss(a, b);
  return (hi - lo) / (2 * eps);
}

TEST(AutogradTest, MatmulBackwardMatchesFiniteDifference) {
  Rng rng(1);
  Tensor a = Tensor::Random({4, 5}, rng);
  Tensor b = Tensor::Random({5, 3}, rng);
  Tensor c = MatMul(a, b);
  MatmulGrads grads = MatmulBackward(a, b, c);  // dL/dC = C for L = 0.5||C||^2
  for (int64_t i = 0; i < a.size(); i += 3) {
    EXPECT_NEAR(grads.da[i], NumericalGrad(a, b, true, i), 5e-2f) << "da[" << i << "]";
  }
  for (int64_t i = 0; i < b.size(); i += 2) {
    EXPECT_NEAR(grads.db[i], NumericalGrad(a, b, false, i), 5e-2f) << "db[" << i << "]";
  }
}

TEST(AutogradTest, MatmulBackwardShapes) {
  Rng rng(2);
  Tensor a = Tensor::Random({7, 4}, rng);
  Tensor b = Tensor::Random({4, 9}, rng);
  Tensor dc = Tensor::Random({7, 9}, rng);
  MatmulGrads grads = MatmulBackward(a, b, dc);
  EXPECT_EQ(grads.da.shape(), a.shape());
  EXPECT_EQ(grads.db.shape(), b.shape());
}

TEST(AutogradTest, ReluBackwardGatesBySign) {
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = 0.5f;
  Tensor dy = Tensor::Full({4}, 3.0f);
  Tensor dx = ReluBackward(x, dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 3.0f);
  EXPECT_EQ(dx[2], 0.0f);  // subgradient 0 at x == 0
  EXPECT_EQ(dx[3], 3.0f);
}

TEST(AutogradTest, PitMaskedWeightGradMatchesDenseReference) {
  Rng rng(3);
  Tensor a = Tensor::Random({16, 24}, rng);
  Tensor dc = Tensor::Random({16, 32}, rng);
  Rng mrng(4);
  for (double sparsity : {0.5, 0.9, 1.0}) {
    Tensor mask = Tensor::RandomBlockSparse(24, 32, 24, 4, sparsity, mrng);
    // Binarize.
    for (int64_t i = 0; i < mask.size(); ++i) {
      mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
    }
    Tensor ref = MaskedWeightGradDense(a, dc, mask);
    for (int64_t bc : {1, 4, 8}) {
      EXPECT_TRUE(AllClose(PitMaskedWeightGrad(a, dc, mask, bc), ref, 1e-3f, 1e-4f))
          << "sparsity " << sparsity << " block_cols " << bc;
    }
  }
}

TEST(AutogradTest, PitMaskedWeightGradIrregularMaskStillExact) {
  Rng rng(5);
  Tensor a = Tensor::Random({8, 12}, rng);
  Tensor dc = Tensor::Random({8, 16}, rng);
  Tensor mask = Tensor::RandomSparse({12, 16}, 0.7, rng);  // element-level mask
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  EXPECT_TRUE(AllClose(PitMaskedWeightGrad(a, dc, mask, 2),
                       MaskedWeightGradDense(a, dc, mask), 1e-3f, 1e-4f));
}

TEST(AutogradTest, MaskedLinearStepGradZeroOnPrunedEntries) {
  Rng rng(6);
  Tensor x = Tensor::Random({10, 16}, rng);
  Tensor w = Tensor::Random({16, 8}, rng);
  PruningConfig config{4, 2, 0.5};
  Tensor mask = MagnitudePruneMask(w, config);
  Tensor dx;
  Tensor dw = MaskedLinearStep(x, w, mask, &dx);
  EXPECT_EQ(dw.shape(), w.shape());
  EXPECT_EQ(dx.shape(), x.shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0.0f) {
      EXPECT_EQ(dw[i], 0.0f) << i;
    }
  }
  EXPECT_GT(dw.CountNonZero(), 0);
}

TEST(AutogradTest, TrainingStepReducesLoss) {
  // Sanity: one SGD step on the masked linear problem lowers the loss.
  Rng rng(7);
  Tensor x = Tensor::Random({12, 8}, rng);
  Tensor w = Tensor::Random({8, 6}, rng);
  Tensor mask = Tensor::Full({8, 6}, 1.0f);
  auto loss = [&](const Tensor& ww) {
    Tensor y = MatMul(x, ApplyMask(ww, mask));
    float l = 0.0f;
    for (int64_t i = 0; i < y.size(); ++i) {
      l += 0.5f * y[i] * y[i];
    }
    return l;
  };
  const float before = loss(w);
  Tensor dw = MaskedLinearStep(x, w, mask);
  for (int64_t i = 0; i < w.size(); ++i) {
    w[i] -= 0.01f * dw[i];
  }
  EXPECT_LT(loss(w), before);
}

}  // namespace
}  // namespace pit
