#include <gtest/gtest.h>

#include <cmath>

#include "pit/tensor/ops.h"

namespace pit {
namespace {

// Naive triple-loop matmul as the independent oracle.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < b.dim(1); ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < a.dim(1); ++k) {
        acc += a.At(i, k) * b.At(k, j);
      }
      c.At(i, j) = acc;
    }
  }
  return c;
}

TEST(OpsTest, MatMulMatchesNaive) {
  Rng rng(1);
  Tensor a = Tensor::Random({17, 23}, rng);
  Tensor b = Tensor::Random({23, 11}, rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), NaiveMatMul(a, b)));
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(2);
  Tensor a = Tensor::Random({5, 5}, rng);
  Tensor eye = Tensor::Zeros({5, 5});
  for (int64_t i = 0; i < 5; ++i) {
    eye.At(i, i) = 1.0f;
  }
  EXPECT_TRUE(AllClose(MatMul(a, eye), a));
  EXPECT_TRUE(AllClose(MatMul(eye, a), a));
}

TEST(OpsTest, MatMulZeroSkipPathIsExact) {
  Rng rng(3);
  Tensor a = Tensor::RandomSparse({16, 32}, 0.8, rng);
  Tensor b = Tensor::Random({32, 8}, rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), NaiveMatMul(a, b)));
}

TEST(OpsTest, BatchMatMulMatchesPerSliceMatMul) {
  Rng rng(4);
  Tensor a = Tensor::Random({3, 6, 7}, rng);
  Tensor b = Tensor::Random({3, 7, 5}, rng);
  Tensor c = BatchMatMul(a, b);
  for (int64_t s = 0; s < 3; ++s) {
    Tensor as({6, 7}), bs({7, 5});
    for (int64_t i = 0; i < 6 * 7; ++i) {
      as[i] = a[s * 42 + i];
    }
    for (int64_t i = 0; i < 7 * 5; ++i) {
      bs[i] = b[s * 35 + i];
    }
    Tensor cs = MatMul(as, bs);
    for (int64_t i = 0; i < 6; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        EXPECT_NEAR(c.At(s, i, j), cs.At(i, j), 1e-5f);
      }
    }
  }
}

TEST(OpsTest, MatMulBiasBroadcasts) {
  Rng rng(5);
  Tensor a = Tensor::Random({4, 3}, rng);
  Tensor b = Tensor::Random({3, 2}, rng);
  Tensor bias({2});
  bias[0] = 1.0f;
  bias[1] = -2.0f;
  Tensor c = MatMulBias(a, b, bias);
  Tensor plain = MatMul(a, b);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(c.At(i, 0), plain.At(i, 0) + 1.0f, 1e-6f);
    EXPECT_NEAR(c.At(i, 1), plain.At(i, 1) - 2.0f, 1e-6f);
  }
}

TEST(OpsTest, AddAndMulElementwise) {
  Rng rng(6);
  Tensor a = Tensor::Random({4, 4}, rng);
  Tensor b = Tensor::Random({4, 4}, rng);
  Tensor s = Add(a, b);
  Tensor p = Mul(a, b);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(s[i], a[i] + b[i]);
    EXPECT_FLOAT_EQ(p[i], a[i] * b[i]);
  }
}

TEST(OpsTest, ReluClampsNegatives) {
  Tensor a({4});
  a[0] = -1.0f;
  a[1] = 0.0f;
  a[2] = 2.0f;
  a[3] = -0.5f;
  Tensor r = Relu(a);
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[1], 0.0f);
  EXPECT_EQ(r[2], 2.0f);
  EXPECT_EQ(r[3], 0.0f);
}

TEST(OpsTest, GeluApproximationAnchors) {
  Tensor a({3});
  a[0] = 0.0f;
  a[1] = 10.0f;
  a[2] = -10.0f;
  Tensor g = Gelu(a);
  EXPECT_NEAR(g[0], 0.0f, 1e-6f);
  EXPECT_NEAR(g[1], 10.0f, 1e-3f);
  EXPECT_NEAR(g[2], 0.0f, 1e-3f);
}

TEST(OpsTest, Transpose2DInvolution) {
  Rng rng(7);
  Tensor a = Tensor::Random({5, 9}, rng);
  EXPECT_TRUE(AllClose(Transpose2D(Transpose2D(a)), a));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(8);
  Tensor a = Tensor::Random({6, 10}, rng, -5.0f, 5.0f);
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 10; ++j) {
      sum += s.At(i, j);
      EXPECT_GE(s.At(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxMaskExcludesEntries) {
  Rng rng(9);
  Tensor a = Tensor::Random({2, 4}, rng);
  Tensor mask = Tensor::Zeros({2, 4});
  mask.At(0, 1) = 1.0f;
  mask.At(0, 3) = 1.0f;
  // Row 1 fully masked.
  Tensor s = Softmax(a, &mask);
  EXPECT_EQ(s.At(0, 0), 0.0f);
  EXPECT_EQ(s.At(0, 2), 0.0f);
  EXPECT_NEAR(s.At(0, 1) + s.At(0, 3), 1.0f, 1e-5f);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(s.At(1, j), 0.0f);
  }
}

TEST(OpsTest, SoftmaxInvariantToShift) {
  Rng rng(10);
  Tensor a = Tensor::Random({3, 5}, rng);
  Tensor b = a;
  for (int64_t i = 0; i < b.size(); ++i) {
    b[i] += 100.0f;
  }
  EXPECT_TRUE(AllClose(Softmax(a), Softmax(b), 1e-4f, 1e-5f));
}

TEST(OpsTest, LayerNormZeroMeanUnitVar) {
  Rng rng(11);
  Tensor a = Tensor::Random({4, 64}, rng, -3.0f, 7.0f);
  Tensor gamma = Tensor::Full({64}, 1.0f);
  Tensor beta = Tensor::Zeros({64});
  Tensor n = LayerNorm(a, gamma, beta);
  for (int64_t i = 0; i < 4; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t j = 0; j < 64; ++j) {
      mean += n.At(i, j);
    }
    mean /= 64.0f;
    for (int64_t j = 0; j < 64; ++j) {
      var += (n.At(i, j) - mean) * (n.At(i, j) - mean);
    }
    var /= 64.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(OpsTest, ReduceSumAxis1Matches) {
  Rng rng(12);
  Tensor a = Tensor::Random({3, 7}, rng);
  Tensor s = ReduceSumAxis1(a);
  for (int64_t i = 0; i < 3; ++i) {
    float acc = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      acc += a.At(i, j);
    }
    EXPECT_NEAR(s[i], acc, 1e-5f);
  }
}

TEST(OpsTest, ApplyMaskZeroesMaskedEntries) {
  Rng rng(13);
  Tensor a = Tensor::Random({4, 4}, rng);
  Rng rng2(14);
  Tensor mask = Tensor::RandomSparse({4, 4}, 0.5, rng2);
  Tensor m = ApplyMask(a, mask);
  for (int64_t i = 0; i < 16; ++i) {
    if (mask[i] == 0.0f) {
      EXPECT_EQ(m[i], 0.0f);
    } else {
      EXPECT_EQ(m[i], a[i]);
    }
  }
}

TEST(OpsTest, Conv2DMatchesManualKernel) {
  // 1x1x3x3 input, 1x1x2x2 all-ones kernel: each output is a 2x2 window sum.
  Tensor in({1, 1, 3, 3});
  for (int64_t i = 0; i < 9; ++i) {
    in[i] = static_cast<float>(i + 1);
  }
  Tensor w = Tensor::Full({1, 1, 2, 2}, 1.0f);
  Tensor out = Conv2D(in, w);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out[1], 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(out[2], 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(out[3], 5 + 6 + 8 + 9);
}

TEST(OpsTest, Conv2DMultiChannelAccumulates) {
  Rng rng(15);
  Tensor in = Tensor::Random({2, 3, 5, 5}, rng);
  Tensor w = Tensor::Random({4, 3, 3, 3}, rng);
  Tensor out = Conv2D(in, w);
  EXPECT_EQ(out.shape(), (Shape{2, 4, 3, 3}));
  // Check one element against a direct sum.
  float acc = 0.0f;
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 3; ++j) {
        acc += in[((0 * 3 + c) * 5 + (1 + i)) * 5 + (2 + j)] * w[((1 * 3 + c) * 3 + i) * 3 + j];
      }
    }
  }
  EXPECT_NEAR(out[((0 * 4 + 1) * 3 + 1) * 3 + 2], acc, 1e-4f);
}

}  // namespace
}  // namespace pit
