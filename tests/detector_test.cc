#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pit/core/sparsity_detector.h"

namespace pit {
namespace {

TEST(DetectorTest, FindsExactlyTheNonZeroMicroTiles) {
  Tensor t = Tensor::Zeros({8, 8});
  t.At(0, 0) = 1.0f;   // block (0,0) for 4x4 micro
  t.At(5, 6) = -2.0f;  // block (1,1)
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  EXPECT_EQ(index.block_rows, 2);
  EXPECT_EQ(index.block_cols, 2);
  std::set<int64_t> got(index.offsets.begin(), index.offsets.end());
  EXPECT_EQ(got, (std::set<int64_t>{0, 3}));
}

TEST(DetectorTest, EmptyTensorYieldsEmptyIndex) {
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(Tensor::Zeros({16, 16}), MicroTileShape{4, 4});
  EXPECT_EQ(index.NumNonZero(), 0);
  EXPECT_EQ(index.CoveredFraction(), 0.0);
  EXPECT_EQ(index.SparsityAfterCover(), 1.0);
}

TEST(DetectorTest, DenseTensorCoversEverything) {
  Rng rng(1);
  Tensor t = Tensor::Random({16, 16}, rng, 0.5f, 1.0f);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  EXPECT_EQ(index.NumNonZero(), 16);
  EXPECT_EQ(index.CoveredFraction(), 1.0);
}

TEST(DetectorTest, UnorderedIndexIsPermutationOfOrdered) {
  Rng rng(2);
  Tensor t = Tensor::RandomSparse({64, 64}, 0.8, rng);
  SparsityDetector d1(/*shuffle_seed=*/111);
  SparsityDetector d2(/*shuffle_seed=*/222);
  MicroTileIndex u1 = d1.Detect(t, MicroTileShape{1, 8});
  MicroTileIndex u2 = d2.Detect(t, MicroTileShape{1, 8});
  MicroTileIndex ordered = d1.DetectOrdered(t, MicroTileShape{1, 8});
  // Different schedule seeds: same set, (almost surely) different order.
  std::vector<int64_t> s1 = u1.offsets, s2 = u2.offsets;
  EXPECT_NE(u1.offsets, u2.offsets);
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, ordered.offsets);
  EXPECT_TRUE(std::is_sorted(ordered.offsets.begin(), ordered.offsets.end()));
}

TEST(DetectorTest, RaggedEdgesAreCovered) {
  // 10x10 tensor with 4x4 micro-tiles: 3x3 grid, edge tiles partial.
  Tensor t = Tensor::Zeros({10, 10});
  t.At(9, 9) = 5.0f;  // lives in the bottom-right partial tile
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  EXPECT_EQ(index.block_rows, 3);
  EXPECT_EQ(index.block_cols, 3);
  ASSERT_EQ(index.NumNonZero(), 1);
  EXPECT_EQ(index.offsets[0], 8);  // (2,2)
}

TEST(DetectorTest, RowMicroTileMatchesRowNonZeroCount) {
  Rng rng(3);
  Tensor t = Tensor::RandomSparse({32, 16}, 0.95, rng);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{1, 16});
  int64_t expected = 0;
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 16; ++c) {
      if (t.At(r, c) != 0.0f) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_EQ(index.NumNonZero(), expected);
}

TEST(DetectorTest, PerBlockRowCountsSumToTotal) {
  Rng rng(4);
  Tensor t = Tensor::RandomSparse({64, 64}, 0.7, rng);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{8, 1});
  auto counts = NonZeroMicroTilesPerBlockRow(index);
  ASSERT_EQ(static_cast<int64_t>(counts.size()), index.block_rows);
  int64_t sum = 0;
  for (int64_t c : counts) {
    sum += c;
  }
  EXPECT_EQ(sum, index.NumNonZero());
}

TEST(DetectorTest, BlockRowColDecomposition) {
  MicroTileIndex index;
  index.micro_tile = {2, 2};
  index.block_rows = 4;
  index.block_cols = 5;
  EXPECT_EQ(index.BlockRowOf(13), 2);
  EXPECT_EQ(index.BlockColOf(13), 3);
}

// ---- cost-model side --------------------------------------------------------

TEST(DetectorCostTest, UnorderedCheaperThanOrdered) {
  CostModel m(V100());
  const int64_t elems = 4096 * 4096;
  const int64_t nnz = elems / 100;
  EXPECT_LT(SparsityDetector::DetectCostUs(m, elems, nnz),
            SparsityDetector::OrderedDetectCostUs(m, elems, nnz));
}

TEST(DetectorCostTest, OrderedAtLeast3xUnordered) {
  // Fig. 18: PIT is 3.6–26.5x faster than the baselines' index construction.
  CostModel m(V100());
  const int64_t elems = 4096 * 4096;
  const double pit = SparsityDetector::DetectCostUs(m, elems, elems / 64);
  const double ordered = SparsityDetector::OrderedDetectCostUs(m, elems, elems / 64);
  EXPECT_GT(ordered / pit, 3.0);
}

TEST(DetectorCostTest, CostGrowsWithTensorSize) {
  CostModel m(V100());
  EXPECT_LT(SparsityDetector::DetectCostUs(m, 1 << 16, 100),
            SparsityDetector::DetectCostUs(m, 1 << 24, 100));
}

// Fig. 20-adjacent: detection must be cheap relative to even one dense tile
// wave over the same data, or "online" would be a misnomer.
TEST(DetectorCostTest, DetectionIsCheapRelativeToCompute) {
  CostModel m(V100());
  const double detect = SparsityDetector::DetectCostUs(m, 4096 * 4096, 4096 * 4096 / 32);
  const double matmul = m.DenseMatmul(4096, 4096, 4096, {64, 64, 64}).Total();
  EXPECT_LT(detect, matmul * 0.05);
}

}  // namespace
}  // namespace pit
