#include <gtest/gtest.h>

#include <numeric>

#include "pit/workloads/attention_masks.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/pattern_repeat.h"
#include "pit/workloads/pruning.h"
#include "pit/workloads/seq_len.h"

namespace pit {
namespace {

// ---- sequence lengths -------------------------------------------------------

TEST(SeqLenTest, AllBertDatasetsResolve) {
  for (const auto& name : BertDatasets()) {
    SeqLenDistribution d = DatasetSeqLens(name);
    EXPECT_EQ(d.name, name);
    EXPECT_GT(d.mean, 0.0);
    EXPECT_GT(d.max_len, d.min_len);
  }
}

TEST(SeqLenTest, SampledLensWithinBounds) {
  Rng rng(1);
  SeqLenDistribution d = DatasetSeqLens("mnli");
  auto lens = SampleBatchLens(d, 256, rng);
  ASSERT_EQ(lens.size(), 256u);
  for (int64_t l : lens) {
    EXPECT_GE(l, d.min_len);
    EXPECT_LE(l, d.max_len);
  }
}

TEST(SeqLenTest, MeanRoughlyMatchesTarget) {
  Rng rng(2);
  SeqLenDistribution d = DatasetSeqLens("qqp");
  auto lens = SampleBatchLens(d, 4000, rng);
  const double mean = static_cast<double>(SumLens(lens)) / 4000.0;
  EXPECT_NEAR(mean, d.mean, d.mean * 0.2);
}

TEST(SeqLenTest, PaddingWasteMatchesDefinition) {
  std::vector<int64_t> lens = {10, 20, 40};
  // padded = 3*40 = 120, effective = 70 -> waste = 50/120.
  EXPECT_NEAR(PaddingWaste(lens), 50.0 / 120.0, 1e-9);
  EXPECT_EQ(MaxLen(lens), 40);
  EXPECT_EQ(SumLens(lens), 70);
}

TEST(SeqLenTest, UniformLensHaveNoWaste) {
  std::vector<int64_t> lens(8, 64);
  EXPECT_EQ(PaddingWaste(lens), 0.0);
}

TEST(SeqLenTest, TokenMaskShapeAndContent) {
  auto mask = TokenMask({2, 4}, 5);
  ASSERT_EQ(mask.size(), 2u);
  EXPECT_TRUE(mask[0][1]);
  EXPECT_FALSE(mask[0][2]);
  EXPECT_TRUE(mask[1][3]);
  EXPECT_FALSE(mask[1][4]);
}

// ---- MoE routing ------------------------------------------------------------

TEST(MoeRoutingTest, LoadsSumToTokens) {
  Rng rng(3);
  MoeRoutingConfig config;
  config.num_experts = 16;
  auto routing = RouteTokens(1000, config, rng);
  auto loads = ExpertLoads(routing, 16);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), int64_t{0}), 1000);
}

TEST(MoeRoutingTest, ImbalanceProducesSkewedLoads) {
  Rng rng(4);
  MoeRoutingConfig skewed{64, 1.2};
  MoeRoutingConfig uniform{64, 0.0};
  auto skew_loads = ExpertLoads(RouteTokens(8000, skewed, rng), 64);
  auto flat_loads = ExpertLoads(RouteTokens(8000, uniform, rng), 64);
  EXPECT_GT(CapacityPaddingWaste(skew_loads), CapacityPaddingWaste(flat_loads));
  EXPECT_GT(CapacityPaddingWaste(skew_loads), 0.3);
}

TEST(MoeRoutingTest, CapacityWasteZeroWhenBalanced) {
  std::vector<int64_t> loads(8, 125);
  EXPECT_EQ(CapacityPaddingWaste(loads), 0.0);
  EXPECT_EQ(MaxLoad(loads), 125);
}

// ---- attention masks --------------------------------------------------------

TEST(LongformerMaskTest, DensityMatchesClosedForm) {
  Rng rng(5);
  LongformerMaskConfig config{512, 64, 8};
  Tensor mask = LongformerMask(config, rng);
  const double measured = 1.0 - mask.SparsityRatio();
  EXPECT_NEAR(measured, LongformerMaskDensity(config), 0.05);
}

TEST(LongformerMaskTest, GlobalRowsAreFull) {
  Rng rng(6);
  LongformerMaskConfig config{128, 16, 4};
  Tensor mask = LongformerMask(config, rng);
  // At least num_global rows must be entirely ones.
  int full_rows = 0;
  for (int64_t i = 0; i < 128; ++i) {
    bool full = true;
    for (int64_t j = 0; j < 128; ++j) {
      if (mask.At(i, j) == 0.0f) {
        full = false;
        break;
      }
    }
    full_rows += full ? 1 : 0;
  }
  EXPECT_GE(full_rows, 4);
}

TEST(LongformerMaskTest, WindowIsPresent) {
  Rng rng(7);
  LongformerMaskConfig config{64, 8, 0};
  Tensor mask = LongformerMask(config, rng);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(mask.At(i, i), 1.0f);  // self within window
  }
  EXPECT_EQ(mask.At(0, 63), 0.0f);  // far pair outside window, no globals
}

TEST(MuseformerMaskTest, CausalAndDensitySane) {
  Rng rng(8);
  MuseformerMaskConfig config{512, 64, 2, 0.05};
  Tensor mask = MuseformerMask(config, rng);
  // Strictly upper-triangular entries must be zero (causal).
  for (int64_t i = 0; i < 512; i += 37) {
    for (int64_t j = i + 1; j < 512; j += 41) {
      EXPECT_EQ(mask.At(i, j), 0.0f);
    }
  }
  const double measured = 1.0 - mask.SparsityRatio();
  EXPECT_NEAR(measured, MuseformerMaskDensity(config), 0.1);
  EXPECT_LT(measured, 0.6);
}

TEST(ActivationSparsityTest, RatioOnTarget) {
  Rng rng(9);
  Tensor t = ActivationSparseTensor(256, 256, 0.99, rng);
  EXPECT_NEAR(t.SparsityRatio(), 0.99, 0.005);
}

// ---- pruning ----------------------------------------------------------------

TEST(PruningTest, MaskSparsityMatchesTarget) {
  Rng rng(10);
  Tensor w = Tensor::Random({256, 256}, rng);
  PruningConfig config{32, 64, 0.9};
  Tensor mask = MagnitudePruneMask(w, config);
  EXPECT_NEAR(mask.SparsityRatio(), 0.9, 0.05);
}

TEST(PruningTest, MaskIsBlockStructured) {
  Rng rng(11);
  Tensor w = Tensor::Random({64, 128}, rng);
  PruningConfig config{32, 64, 0.5};
  Tensor mask = MagnitudePruneMask(w, config);
  for (int64_t br = 0; br < 2; ++br) {
    for (int64_t bc = 0; bc < 2; ++bc) {
      const float first = mask.At(br * 32, bc * 64);
      for (int64_t i = 0; i < 32; ++i) {
        for (int64_t j = 0; j < 64; ++j) {
          EXPECT_EQ(mask.At(br * 32 + i, bc * 64 + j), first);
        }
      }
    }
  }
}

TEST(PruningTest, KeepsLargestBlocks) {
  Tensor w = Tensor::Zeros({64, 64});
  // Make block (1,1) clearly the largest.
  for (int64_t i = 32; i < 64; ++i) {
    for (int64_t j = 32; j < 64; ++j) {
      w.At(i, j) = 10.0f;
    }
  }
  PruningConfig config{32, 32, 0.75};  // keep 1 of 4 blocks
  Tensor mask = MagnitudePruneMask(w, config);
  EXPECT_EQ(mask.At(40, 40), 1.0f);
  EXPECT_EQ(mask.At(0, 0), 0.0f);
}

TEST(PruningTest, PerturbationChurnsPattern) {
  Rng rng(12);
  Tensor w = Tensor::Random({128, 128}, rng);
  PruningConfig config{32, 1, 0.9};
  Tensor m1 = MagnitudePruneMask(w, config);
  PerturbWeights(&w, 0.5f, rng);
  Tensor m2 = MagnitudePruneMask(w, config);
  EXPECT_GT(MaskChurn(m1, m2), 0.0);
  EXPECT_NEAR(m2.SparsityRatio(), 0.9, 0.05);
}

// ---- pattern repetition -----------------------------------------------------

TEST(PatternRepeatTest, TrackerCountsHits) {
  PatternRepeatTracker tracker;
  EXPECT_FALSE(tracker.Observe(1));
  EXPECT_FALSE(tracker.Observe(2));
  EXPECT_TRUE(tracker.Observe(1));
  EXPECT_EQ(tracker.observed(), 3);
  EXPECT_EQ(tracker.hits(), 1);
  EXPECT_NEAR(tracker.HitRatio(), 1.0 / 3.0, 1e-12);
}

TEST(PatternRepeatTest, SeqLenHashIsOrderInsensitive) {
  EXPECT_EQ(HashSeqLenPattern({3, 1, 2}), HashSeqLenPattern({1, 2, 3}));
  EXPECT_NE(HashSeqLenPattern({1, 2, 3}), HashSeqLenPattern({1, 2, 4}));
}

TEST(PatternRepeatTest, MaskHashSensitivity) {
  std::vector<bool> a(100, false), b(100, false);
  b[57] = true;
  EXPECT_NE(HashMaskPattern(a), HashMaskPattern(b));
  EXPECT_EQ(HashMaskPattern(a), HashMaskPattern(std::vector<bool>(100, false)));
}

TEST(PatternRepeatTest, SeqLenRepetitionIsRareAtBatch32) {
  // Fig. 20: ~0.4% hit ratio for sequence-length patterns.
  Rng rng(13);
  SeqLenDistribution d = DatasetSeqLens("mnli");
  PatternRepeatTracker tracker;
  for (int i = 0; i < 1000; ++i) {
    tracker.Observe(HashSeqLenPattern(SampleBatchLens(d, 32, rng)));
  }
  EXPECT_LT(tracker.HitRatio(), 0.02);
}

}  // namespace
}  // namespace pit
