#include <gtest/gtest.h>

#include "pit/core/kernel_space.h"

namespace pit {
namespace {

TEST(KernelSpaceTest, SparseKernelsAreAxesTimesLayoutsPerDense) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  KernelSpaceStats stats = SummarizeKernelSpace(db);
  EXPECT_EQ(stats.dense_kernels, 30);
  EXPECT_EQ(stats.wmma_kernels, 0);  // fp32 database
  EXPECT_EQ(stats.rules_per_dense, 6);
  EXPECT_EQ(stats.sparse_kernels, 30 * 6);
}

TEST(KernelSpaceTest, Fp16DatabaseAddsWmmaVariants) {
  CostModel model(V100(), Precision::kFp16);
  TileDatabase db = TileDatabase::BuildDefault(model, /*include_wmma=*/true);
  KernelSpaceStats stats = SummarizeKernelSpace(db);
  EXPECT_EQ(stats.dense_kernels, 30);
  EXPECT_GT(stats.wmma_kernels, 0);
  // The paper's §4 ratio: ~3 sparse kernels per dense kernel (1500 / 500).
  const double ratio = static_cast<double>(stats.sparse_kernels) /
                       static_cast<double>(stats.dense_kernels + stats.wmma_kernels);
  EXPECT_GE(ratio, 3.0);
}

TEST(KernelSpaceTest, EveryRuleHasConsistentMicroTile) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  for (const PitRule& rule : EnumerateRuleSpace(db)) {
    switch (rule.axis) {
      case MatmulAxis::kM:
      case MatmulAxis::kN:
        EXPECT_EQ(rule.micro_tile.rows, 1);
        EXPECT_EQ(rule.micro_tile.cols, rule.dense_tile.k);
        break;
      case MatmulAxis::kK:
        EXPECT_EQ(rule.micro_tile.rows, rule.dense_tile.m);
        EXPECT_EQ(rule.micro_tile.cols, 1);
        break;
    }
  }
}

TEST(KernelSpaceTest, LayoutFlipFlagsComplementAcrossLayouts) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  auto rules = EnumerateRuleSpace(db);
  // Rules come in (row-major, col-major) pairs per (tile, axis); for the m
  // and k axes exactly one of the pair needs a flip.
  for (size_t i = 0; i + 1 < rules.size(); i += 2) {
    const PitRule& rm = rules[i];
    const PitRule& cm = rules[i + 1];
    ASSERT_EQ(rm.axis, cm.axis);
    if (rm.axis != MatmulAxis::kN) {
      EXPECT_NE(rm.needs_layout_flip, cm.needs_layout_flip);
    }
  }
}

}  // namespace
}  // namespace pit
