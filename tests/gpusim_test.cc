#include <gtest/gtest.h>

#include <cmath>

#include "pit/gpusim/cost_model.h"
#include "pit/gpusim/device.h"

namespace pit {
namespace {

TEST(DeviceTest, SpecsMatchDatasheets) {
  DeviceSpec v = V100();
  EXPECT_EQ(v.num_sms, 80);
  EXPECT_EQ(v.transaction_bytes, 32);
  DeviceSpec a = A100();
  EXPECT_EQ(a.num_sms, 108);
  EXPECT_GT(a.mem_bw_bytes_us, v.mem_bw_bytes_us);
}

TEST(DeviceTest, MinMicroTileMatchesTransaction) {
  // §3.1: 32-byte transactions -> 1x8 fp32, 1x16 fp16.
  EXPECT_EQ(MinMicroTileElems(V100(), Precision::kFp32), 8);
  EXPECT_EQ(MinMicroTileElems(V100(), Precision::kFp16), 16);
}

TEST(CostModelTest, EfficiencyIncreasesWithTileSize) {
  CostModel m(V100());
  const double e8 = m.TileEfficiency({8, 32, 8});
  const double e16 = m.TileEfficiency({16, 32, 16});
  const double e32 = m.TileEfficiency({32, 32, 32});
  const double e64 = m.TileEfficiency({64, 32, 64});
  EXPECT_LT(e8, e16);
  EXPECT_LT(e16, e32);
  EXPECT_LT(e32, e64);
  EXPECT_GT(e8, 0.0);
  EXPECT_LT(e64, 1.0);
}

TEST(CostModelTest, SmallVsLargeTileEfficiencyGapIsLarge) {
  // The Fig. 3a dilemma requires a substantial gap between 8x8 and 32x32.
  CostModel m(V100());
  EXPECT_GT(m.TileEfficiency({32, 32, 32}) / m.TileEfficiency({8, 32, 8}), 4.0);
}

TEST(CostModelTest, TileCostScalesWithK) {
  CostModel m(V100());
  const double c32 = m.MatmulTileCost({32, 32, 32});
  const double c64 = m.MatmulTileCost({32, 64, 32});
  EXPECT_NEAR(c64 / c32, 2.0, 1e-9);
}

TEST(CostModelTest, WaveLatencyQuantizesBySmCount) {
  CostModel m(V100());
  const double tile_cost = 1.0;
  EXPECT_DOUBLE_EQ(m.WaveLatency(1, tile_cost), 1.0);
  EXPECT_DOUBLE_EQ(m.WaveLatency(80, tile_cost), 1.0);
  EXPECT_DOUBLE_EQ(m.WaveLatency(81, tile_cost), 2.0);
  EXPECT_DOUBLE_EQ(m.WaveLatency(0, tile_cost), 0.0);
}

TEST(CostModelTest, DenseMatmulMonotoneInProblemSize) {
  CostModel m(V100());
  const TileShape tile{32, 32, 32};
  const double small = m.DenseMatmul(512, 512, 512, tile).Total();
  const double big = m.DenseMatmul(4096, 4096, 4096, tile).Total();
  EXPECT_GT(big, small);
  // ~512x more work; wave quantization keeps it within a sane band.
  EXPECT_GT(big / small, 100.0);
}

TEST(CostModelTest, SparseMatmulCheaperThanDenseAtFewTiles) {
  // SparseMatmul's tiles reduce over the full k extent, so the comparable
  // dense tile count is tiles_m * tiles_n = 128 * 128.
  CostModel m(V100());
  const TileShape tile{32, 32, 32};
  const double dense = m.DenseMatmul(4096, 4096, 4096, tile).Total();
  const int64_t output_tiles = 128 * 128;
  const double sparse = m.SparseMatmul(output_tiles / 10, 4096, tile, 0.05).Total();
  EXPECT_LT(sparse, dense);
  EXPECT_GT(dense / sparse, 5.0);
}

TEST(CostModelTest, Fp16HalvesComputeTime) {
  CostModel fp32(V100(), Precision::kFp32);
  CostModel fp16(V100(), Precision::kFp16);
  // Same tile: fp16 peak is 2x and efficiency differs slightly via balance;
  // cost must drop meaningfully.
  EXPECT_LT(fp16.MatmulTileCost({64, 64, 64}), fp32.MatmulTileCost({64, 64, 64}));
}

TEST(CostModelTest, TensorCoreSpeedsUpLargeTiles) {
  CostModel m(V100(), Precision::kFp16);
  EXPECT_LT(m.MatmulTileCost({64, 64, 64}, /*tensor_core=*/true),
            m.MatmulTileCost({64, 64, 64}, /*tensor_core=*/false));
}

TEST(CostModelTest, ScatteredMemorySlowerThanStreaming) {
  CostModel m(V100());
  const int64_t bytes = 1 << 20;
  EXPECT_GT(m.ScatteredMemoryTime(bytes, 4), m.MemoryTime(bytes));
  EXPECT_DOUBLE_EQ(m.ScatteredMemoryTime(bytes, 64), m.MemoryTime(bytes));
}

TEST(CostModelTest, FineGrainedCostFarFromPeak) {
  CostModel m(V100());
  const int64_t flops = 1'000'000'000;
  const double fine = m.FineGrainedFlopCost(flops);
  const double peak_time =
      static_cast<double>(flops) / (m.device().fp32_flops_per_sm_us * m.device().num_sms);
  EXPECT_GT(fine, 10.0 * peak_time);
}

TEST(WmmaTest, ShapeTableAndCompatibility) {
  int n = 0;
  const WmmaShape* shapes = WmmaShapes(&n);
  ASSERT_EQ(n, 3);
  EXPECT_EQ(shapes[0].m, 16);
  // 32x64x32 decomposes into 16x16x16 fragments.
  EXPECT_TRUE(WmmaCompatible({32, 32, 64}));
  EXPECT_TRUE(WmmaCompatible({16, 16, 16}));
  // 32x1 output tile cannot be assembled from any wmma fragment (§5.3).
  EXPECT_FALSE(WmmaCompatible({32, 16, 1}));
  EXPECT_FALSE(WmmaCompatible({1, 16, 64}));
}

TEST(CostBreakdownTest, TotalSumsAllComponents) {
  CostBreakdown c;
  c.compute_us = 1;
  c.memory_us = 2;
  c.launch_us = 3;
  c.convert_us = 4;
  c.index_us = 5;
  EXPECT_DOUBLE_EQ(c.Total(), 15.0);
  CostBreakdown d = c;
  d += c;
  EXPECT_DOUBLE_EQ(d.Total(), 30.0);
}

// The core dilemma of Fig. 3a: at moderate sparsity large tiles win; at
// extreme sparsity small tiles win. Reproduced directly from the model.
TEST(CostModelTest, Fig3aTileDilemmaCrossoverExists) {
  CostModel m(V100());
  auto latency = [&](int64_t t, double sparsity) {
    // Fraction of t x t tiles containing a nonzero under iid element sparsity.
    const double p = 1.0 - std::pow(sparsity, static_cast<double>(t * t));
    const int64_t grid = (4096 / t) * (4096 / t);
    const int64_t exec = static_cast<int64_t>(p * static_cast<double>(grid));
    return m.SparseMatmul(exec, 4096, {t, 32, t}).Total();
  };
  // 99%: 32x32 faster than 8x8 (paper: 32x32 wins below 99.6%).
  EXPECT_LT(latency(32, 0.99), latency(8, 0.99));
  // 99.95%: 8x8 faster (paper: 8x8 wins only above ~99.9%).
  EXPECT_LT(latency(8, 0.9995), latency(32, 0.9995));
}

}  // namespace
}  // namespace pit
