// Differential suite for the planned graph executor: plan execution must be
// bitwise identical to eager (pre-refactor) execution for every OpKind, under
// arena/in-place buffer reuse, across plan reuse with changing input values,
// and for any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "pit/common/backend.h"
#include "pit/common/cancellation.h"
#include "pit/common/parallel_for.h"
#include "pit/graph/execution_plan.h"
#include "pit/graph/graph.h"
#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)), 0)
      << "max abs diff " << MaxAbsDiff(a, b);
}

// The pre-refactor eager executor, kept verbatim here as the oracle: one
// fresh Tensor per node, direct op calls.
std::map<int, Tensor> EagerExecute(const Graph& g, const std::map<std::string, Tensor>& feeds,
                                   const std::vector<MatmulDecision>* decisions = nullptr,
                                   PitCompiler* compiler = nullptr) {
  auto decision_for = [&](int id) -> const MatmulDecision* {
    if (decisions == nullptr) {
      return nullptr;
    }
    for (const auto& d : *decisions) {
      if (d.node_id == id) {
        return &d;
      }
    }
    return nullptr;
  };
  std::map<int, Tensor> values;
  for (int id = 0; id < g.size(); ++id) {
    const GraphNode& n = g.node(id);
    switch (n.kind) {
      case OpKind::kInput:
        values.emplace(id, feeds.at(n.name));
        break;
      case OpKind::kWeight:
        values.emplace(id, g.weight(id));
        break;
      case OpKind::kMatmul: {
        const MatmulDecision* d = decision_for(id);
        if (d != nullptr && d->use_pit) {
          values.emplace(id,
                         compiler->SparseMatmul(values.at(n.inputs[0]), values.at(n.inputs[1]))
                             .output);
        } else {
          values.emplace(id, MatMul(values.at(n.inputs[0]), values.at(n.inputs[1])));
        }
        break;
      }
      case OpKind::kMatmulBias: {
        const MatmulDecision* d = decision_for(id);
        if (d != nullptr && d->use_pit) {
          Tensor y = compiler->SparseMatmul(values.at(n.inputs[0]), values.at(n.inputs[1]))
                         .output;
          const Tensor& bias = values.at(n.inputs[2]);
          for (int64_t i = 0; i < y.dim(0); ++i) {
            for (int64_t j = 0; j < y.dim(1); ++j) {
              y.At(i, j) += bias[j];
            }
          }
          values.emplace(id, std::move(y));
        } else {
          values.emplace(id, MatMulBias(values.at(n.inputs[0]), values.at(n.inputs[1]),
                                        values.at(n.inputs[2])));
        }
        break;
      }
      case OpKind::kRelu:
        values.emplace(id, Relu(values.at(n.inputs[0])));
        break;
      case OpKind::kAdd:
        values.emplace(id, Add(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kMask:
        values.emplace(id, ApplyMask(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kSoftmax:
        if (n.inputs.size() == 2) {
          Tensor out(n.shape);
          const ConstTensorView mask(values.at(n.inputs[1]));
          SoftmaxInto(values.at(n.inputs[0]), &mask, out);
          values.emplace(id, std::move(out));
        } else {
          values.emplace(id, Softmax(values.at(n.inputs[0])));
        }
        break;
      case OpKind::kLayerNorm:
        values.emplace(id, LayerNorm(values.at(n.inputs[0]), values.at(n.inputs[1]),
                                     values.at(n.inputs[2]), n.fattr));
        break;
      case OpKind::kScale:
        values.emplace(id, Scale(values.at(n.inputs[0]), n.fattr));
        break;
      case OpKind::kTranspose: {
        Tensor out(n.shape);
        TransposeInto(values.at(n.inputs[0]), n.iattr0, n.iattr1, out);
        values.emplace(id, std::move(out));
        break;
      }
      case OpKind::kReshape:
        values.emplace(id, values.at(n.inputs[0]).Reshape(n.shape));
        break;
      case OpKind::kBatchMatmul:
        values.emplace(id, BatchMatMul(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
    }
  }
  return values;
}

// A graph touching every OpKind: two inputs, two weights, matmul,
// matmul_bias, mask, softmax, add, relu.
Graph BuildAllOpsGraph(int64_t tokens, int64_t hidden, Rng& rng) {
  Graph g;
  const int x = g.AddInput("x", {tokens, hidden});
  const int m = g.AddInput("m", {tokens, tokens}, /*expected_sparsity=*/0.8);
  const int w = g.AddWeight("w", Tensor::Random({hidden, tokens}, rng));
  const int bias = g.AddWeight("bias", Tensor::Random({tokens}, rng));
  const int mm = g.AddMatmul("mm", x, w);           // [tokens, tokens]
  const int mb = g.AddMatmulBias("mb", x, w, bias);  // [tokens, tokens]
  const int masked = g.AddMask("masked", mm, m);
  const int soft = g.AddSoftmax("soft", masked);
  const int sum = g.AddAdd("sum", mb, soft);
  g.AddRelu("out", sum);
  g.PropagateSparsity();
  return g;
}

std::map<std::string, Tensor> AllOpsFeeds(int64_t tokens, int64_t hidden, uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Random({tokens, hidden}, rng);
  Tensor m = Tensor::RandomSparse({tokens, tokens}, 0.8, rng);
  for (int64_t i = 0; i < m.size(); ++i) {
    m[i] = m[i] != 0.0f ? 1.0f : 0.0f;
  }
  return {{"x", x}, {"m", m}};
}

TEST(PlanExecutorTest, EveryOpKindBitwiseMatchesEager) {
  Rng rng(1);
  Graph g = BuildAllOpsGraph(24, 16, rng);
  auto feeds = AllOpsFeeds(24, 16, 2);
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  ASSERT_EQ(eager.size(), planned.size());
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
}

TEST(PlanExecutorTest, ReferenceBackendAlsoBitwiseMatches) {
  ScopedBackend guard(ComputeBackend::kReference);
  Rng rng(3);
  Graph g = BuildAllOpsGraph(16, 8, rng);
  auto feeds = AllOpsFeeds(16, 8, 4);
  ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
}

TEST(PlanExecutorTest, InPlaceAliasingIsExactAndActuallyHappens) {
  // relu(relu(mask(matmul))) — three elementwise steps, each consuming a
  // dying arena value: all should alias in place.
  Rng rng(5);
  Graph g;
  const int x = g.AddInput("x", {32, 32});
  const int m = g.AddInput("m", {32, 32}, 0.5);
  const int w = g.AddWeight("w", Tensor::Random({32, 32}, rng));
  const int mm = g.AddMatmul("mm", x, w);
  const int masked = g.AddMask("masked", mm, m);
  const int r1 = g.AddRelu("r1", masked);
  g.AddAdd("r2", r1, r1);  // duplicate operand: Add(x, x) aliasing
  g.PropagateSparsity();

  const ExecutionPlan& plan = g.Plan();
  EXPECT_GE(plan.stats().num_inplace, 2);
  // In-place steps share the matmul's block: peak arena < sum of temporaries.
  EXPECT_LT(plan.stats().arena_bytes, plan.stats().sum_temporary_bytes);

  auto feeds = AllOpsFeeds(32, 32, 6);
  feeds["x"] = Tensor::Random({32, 32}, rng);
  ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
}

TEST(PlanExecutorTest, PlanReuseAcrossChangingInputValues) {
  Rng rng(7);
  Graph g = BuildAllOpsGraph(20, 12, rng);
  ExecutionPlan* first = &g.Plan();
  for (uint64_t seed = 10; seed < 14; ++seed) {
    auto feeds = AllOpsFeeds(20, 12, seed);
    ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
    // Same compiled plan object every iteration (no recompilation).
    EXPECT_EQ(&g.Plan(), first);
  }
}

TEST(PlanExecutorTest, PitPathBitwiseMatchesEagerPit) {
  // FFN down-projection fed by ReLU (k-axis gather) plus an externally
  // row-sparse input (m-axis gather) — both PIT kernels under plan dispatch.
  Rng rng(8);
  Graph g;
  const int x = g.AddInput("x", {48, 16}, /*expected_sparsity=*/0.5);
  const int w1 = g.AddWeight("w1", Tensor::Random({16, 64}, rng));
  const int w2 = g.AddWeight("w2", Tensor::Random({64, 16}, rng));
  const int proj = g.AddMatmul("proj", x, w1);  // m-axis candidate
  const int act = g.AddRelu("act", proj);
  g.AddMatmul("down", act, w2);  // k-axis candidate
  g.PropagateSparsity();
  auto decisions = g.PitPass();
  ASSERT_TRUE(decisions[0].use_pit);
  ASSERT_TRUE(decisions[1].use_pit);

  Rng xr(9);
  Tensor xv = Tensor::RandomBlockSparse(48, 16, 1, 16, 0.5, xr);
  std::map<std::string, Tensor> feeds{{"x", xv}};

  PitCompiler eager_compiler(V100());
  auto eager = EagerExecute(g, feeds, &decisions, &eager_compiler);
  PitCompiler planned_compiler(V100());
  auto planned = g.Execute(feeds, &decisions, &planned_compiler);
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
  EXPECT_EQ(planned_compiler.kernels_compiled(), eager_compiler.kernels_compiled());
}

TEST(PlanExecutorTest, PitHandleHitsCacheOnRepeatExecutions) {
  Rng rng(11);
  Graph g = BuildFfnGraph(32, 16, 64, rng);
  auto decisions = g.PitPass();
  PitCompiler compiler(V100());
  Rng xr(12);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({32, 16}, xr)}};
  g.Run(feeds, &decisions, &compiler);
  const int64_t compiled_once = compiler.kernels_compiled();
  for (int i = 0; i < 3; ++i) {
    g.Run(feeds, &decisions, &compiler);
  }
  EXPECT_EQ(compiler.kernels_compiled(), compiled_once);  // no re-selection
  EXPECT_GE(compiler.cache_hits(), 3);
}

TEST(PlanExecutorTest, DeterministicAcrossThreadCounts) {
  Rng rng(13);
  Graph g = BuildAllOpsGraph(40, 24, rng);
  auto feeds = AllOpsFeeds(40, 24, 14);
  Tensor base;
  {
    ScopedNumThreads threads(1);
    base = g.Run(feeds);
  }
  for (int t : {4, 7}) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(g.Run(feeds), base);
  }
}

TEST(PlanExecutorTest, PitDeterministicAcrossThreadCounts) {
  Rng rng(15);
  Graph g = BuildFfnGraph(32, 16, 64, rng);
  auto decisions = g.PitPass();
  Rng xr(16);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({32, 16}, xr)}};
  Tensor base;
  {
    ScopedNumThreads threads(1);
    PitCompiler compiler(V100());
    base = g.Run(feeds, &decisions, &compiler);
  }
  for (int t : {4, 7}) {
    ScopedNumThreads threads(t);
    PitCompiler compiler(V100());
    ExpectBitwiseEqual(g.Run(feeds, &decisions, &compiler), base);
  }
}

TEST(PlanExecutorTest, ArenaSmallerThanSumOfTemporaries) {
  Rng rng(17);
  Graph g = BuildFfnGraph(64, 32, 128, rng);
  const PlanStats& stats = g.Plan().stats();
  EXPECT_GT(stats.num_steps, 1);
  EXPECT_LT(stats.arena_bytes, stats.sum_temporary_bytes);
}

TEST(PlanExecutorTest, FeedForwardPlannedMatchesManualEager) {
  Rng rng(19);
  FeedForward ffn(16, 64, rng);
  // Twin Linears drawn from the identical Rng stream: bitwise-equal weights.
  Rng twin(19);
  Linear up(16, 64, twin);
  Linear down(64, 16, twin);

  Rng xr(20);
  Tensor x = Tensor::Random({24, 16}, xr);
  Tensor act = Relu(up.Forward(x));
  ExpectBitwiseEqual(ffn.Forward(x), down.Forward(act));
  EXPECT_DOUBLE_EQ(ffn.last_activation_sparsity(), act.SparsityRatio());

  // Sparse path: planned PIT dispatch vs the eager sparse Linear.
  PitCompiler planned_compiler(V100());
  PitCompiler eager_compiler(V100());
  ExpectBitwiseEqual(ffn.ForwardSparse(x, planned_compiler),
                     down.ForwardSparse(act, eager_compiler));

  // A different token count compiles a second plan over the same weights.
  Tensor x2 = Tensor::Random({7, 16}, xr);
  ExpectBitwiseEqual(ffn.Forward(x2), down.Forward(Relu(up.Forward(x2))));
}

TEST(PlanExecutorTest, PlannedFfnStackMatchesEagerReference) {
  Rng rng(21);
  PlannedFfnStack stack(3, 16, 48, rng);
  Rng xr(22);
  Tensor x = Tensor::Random({20, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(x), stack.ForwardEager(x));
  // Re-run with different values through the same cached plans.
  Tensor y = Tensor::Random({20, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(y), stack.ForwardEager(y));
  // And at a second token count (fresh plans, same weights).
  Tensor z = Tensor::Random({9, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(z), stack.ForwardEager(z));

  const PlanStats stats = stack.StatsFor(20);
  // 4 compute nodes per layer, minus the up-projection+ReLU pair fused into
  // one GEMM step at plan compile.
  EXPECT_EQ(stats.num_steps, 3 * 3);
  EXPECT_EQ(stats.num_fused, 3);
  EXPECT_GE(stats.num_inplace, 3);  // residual add aliases per layer
  EXPECT_LT(stats.arena_bytes, stats.sum_temporary_bytes);
}

TEST(PlanExecutorTest, PlannedFfnStackPitMatchesEagerPit) {
  Rng rng(23);
  PlannedFfnStack stack(2, 16, 64, rng);
  Rng xr(24);
  Tensor x = Tensor::Random({24, 16}, xr);
  PitCompiler compiler(V100());
  Tensor pit = stack.ForwardPit(x, compiler);
  // The PIT kernels are exact, so against the dense reference only float
  // ordering differs: compare with a tolerance.
  EXPECT_TRUE(AllClose(pit, stack.ForwardEager(x), 1e-3f, 1e-4f));
  EXPECT_GT(compiler.kernels_compiled(), 0);
}

// ---- Transformer-block OpKinds (PR 3) --------------------------------------

// Exercises every new OpKind in one graph: layernorm, scale, reshape (alias),
// rank-3 transposes on both axis pairs, batched matmuls, and a broadcast
// masked softmax.
Graph BuildTransformerOpsGraph(int64_t tokens, int64_t heads, int64_t dk, Rng& rng) {
  const int64_t hidden = heads * dk;
  Graph g;
  const int x = g.AddInput("x", {tokens, hidden});
  const int mask = g.AddInput("mask", {tokens, tokens}, /*expected_sparsity=*/0.5);
  const int gamma = g.AddWeight("gamma", Tensor::Random({hidden}, rng, 0.5f, 1.5f));
  const int beta = g.AddWeight("beta", Tensor::Random({hidden}, rng, -0.1f, 0.1f));
  const int ln = g.AddLayerNorm("ln", x, gamma, beta);
  const int sc = g.AddScale("scale", ln, 0.125f);
  const int rs = g.AddReshape("split", sc, {tokens, heads, dk});
  const int q = g.AddTranspose("q", rs, 0, 1);    // [heads, T, dk]
  const int kt = g.AddTranspose("kt", q, 1, 2);   // [heads, dk, T]
  const int scores = g.AddBatchMatmul("scores", q, kt);  // [heads, T, T]
  const int probs = g.AddSoftmax("probs", scores, mask);  // broadcast mask
  const int ctx = g.AddBatchMatmul("ctx", probs, q);      // [heads, T, dk]
  const int merged = g.AddTranspose("merge", ctx, 0, 1);  // [T, heads, dk]
  const int flat = g.AddReshape("flat", merged, {tokens, hidden});
  g.AddAdd("out", flat, x);
  g.PropagateSparsity();
  return g;
}

std::map<std::string, Tensor> TransformerOpsFeeds(int64_t tokens, int64_t hidden,
                                                  uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Random({tokens, hidden}, rng);
  Tensor m = Tensor::RandomSparse({tokens, tokens}, 0.4, rng);
  for (int64_t i = 0; i < m.size(); ++i) {
    m[i] = m[i] != 0.0f ? 1.0f : 0.0f;
  }
  // One fully-masked row: the planned masked softmax must write its zeros
  // even into a dirty arena slice.
  for (int64_t j = 0; j < tokens; ++j) {
    m.At(tokens / 2, j) = 0.0f;
  }
  return {{"x", x}, {"m", m}, {"mask", m}};
}

TEST(PlanExecutorTest, TransformerOpKindsBitwiseMatchEager) {
  Rng rng(41);
  Graph g = BuildTransformerOpsGraph(12, 4, 8, rng);
  auto feeds = TransformerOpsFeeds(12, 32, 42);
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  ASSERT_EQ(eager.size(), planned.size());
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
}

TEST(PlanExecutorTest, TransformerOpKindsReferenceBackendBitwiseMatches) {
  ScopedBackend guard(ComputeBackend::kReference);
  Rng rng(43);
  Graph g = BuildTransformerOpsGraph(10, 2, 8, rng);
  auto feeds = TransformerOpsFeeds(10, 16, 44);
  ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
}

TEST(PlanExecutorTest, TransformerOpKindsDeterministicAcrossThreadCounts) {
  Rng rng(45);
  Graph g = BuildTransformerOpsGraph(16, 4, 8, rng);
  auto feeds = TransformerOpsFeeds(16, 32, 46);
  Tensor base;
  {
    ScopedNumThreads threads(1);
    base = g.Run(feeds);
    ExpectBitwiseEqual(base, EagerExecute(g, feeds).at(g.size() - 1));
  }
  for (int t : {4, 7}) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(g.Run(feeds), base);
    ExpectBitwiseEqual(EagerExecute(g, feeds).at(g.size() - 1), base);
  }
}

TEST(PlanExecutorTest, Rank2TransposeAndMaskedSoftmaxMatchEager) {
  Rng rng(47);
  Graph g;
  const int x = g.AddInput("x", {9, 7});
  const int mask = g.AddInput("mask", {9, 9}, 0.3);
  const int w = g.AddWeight("w", Tensor::Random({7, 9}, rng));
  const int mm = g.AddMatmul("mm", x, w);           // [9, 9]
  const int sm = g.AddSoftmax("sm", mm, mask);      // rank-2 masked softmax
  const int tr = g.AddTranspose("tr", sm, 0, 1);    // rank-2 transpose
  g.AddAdd("out", tr, sm);
  g.PropagateSparsity();

  Rng fr(48);
  Tensor xv = Tensor::Random({9, 7}, fr);
  Tensor mv = Tensor::RandomSparse({9, 9}, 0.3, fr);
  for (int64_t i = 0; i < mv.size(); ++i) {
    mv[i] = mv[i] != 0.0f ? 1.0f : 0.0f;
  }
  std::map<std::string, Tensor> feeds{{"x", xv}, {"mask", mv}};
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
}

TEST(PlanExecutorTest, ReshapeIsZeroCostAndScaleAliasesInPlace) {
  Rng rng(49);
  Graph g;
  const int x = g.AddInput("x", {8, 6});
  const int w = g.AddWeight("w", Tensor::Random({6, 8}, rng));
  const int mm = g.AddMatmul("mm", x, w);          // arena block A
  const int sc = g.AddScale("sc", mm, 2.0f);       // mm dies here: in-place
  const int rs = g.AddReshape("rs", sc, {4, 2, 8});  // alias of A, no block
  g.AddTranspose("tr", rs, 0, 1);
  const ExecutionPlan& plan = g.Plan();
  EXPECT_GE(plan.stats().num_inplace, 1);
  // Arena holds only the matmul/scale block plus the transpose output: the
  // reshape contributed nothing.
  const int64_t block = ((8 * 8 + 15) / 16) * 16 * static_cast<int64_t>(sizeof(float));
  EXPECT_EQ(plan.stats().arena_bytes, 2 * block);

  Rng fr(50);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({8, 6}, fr)}};
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
}

// ---- Planned attention / encoder blocks ------------------------------------

TEST(PlanExecutorTest, AttentionPlannedBitwiseMatchesEager) {
  Rng rng(51);
  MultiHeadAttention attn(32, 4, rng);
  Rng xr(52);
  Tensor x = Tensor::Random({24, 32}, xr);
  Tensor mask = Tensor::RandomSparse({24, 24}, 0.4, xr);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  ExpectBitwiseEqual(attn.Forward(x), attn.ForwardEager(x));
  ExpectBitwiseEqual(attn.Forward(x, &mask), attn.ForwardEager(x, &mask));
  // Changed values through the same cached plans.
  Tensor y = Tensor::Random({24, 32}, xr);
  ExpectBitwiseEqual(attn.Forward(y, &mask), attn.ForwardEager(y, &mask));
  // A different token count compiles a second plan over the same weights.
  Tensor z = Tensor::Random({7, 32}, xr);
  ExpectBitwiseEqual(attn.Forward(z), attn.ForwardEager(z));
}

TEST(PlanExecutorTest, AttentionPlannedDeterministicAcrossThreadCounts) {
  Rng rng(53);
  MultiHeadAttention attn(16, 2, rng);
  Rng xr(54);
  Tensor x = Tensor::Random({20, 16}, xr);
  Tensor base;
  {
    ScopedNumThreads threads(1);
    base = attn.Forward(x);
    ExpectBitwiseEqual(base, attn.ForwardEager(x));
  }
  for (int t : {4, 7}) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(attn.Forward(x), base);
    ExpectBitwiseEqual(attn.ForwardEager(x), base);
  }
}

TEST(PlanExecutorTest, EncoderLayerPlannedBitwiseMatchesEager) {
  Rng rng(55);
  TransformerEncoderLayer layer(32, 4, 96, rng);
  Rng xr(56);
  Tensor x = Tensor::Random({18, 32}, xr);
  Tensor mask = Tensor::RandomSparse({18, 18}, 0.4, xr);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  for (int t : {1, 4, 7}) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(layer.Forward(x), layer.ForwardEager(x));
    ExpectBitwiseEqual(layer.Forward(x, &mask), layer.ForwardEager(x, &mask));
  }
  // Plan reuse across changing token counts, same weights.
  for (int64_t tokens : {5, 18, 11}) {
    Tensor v = Tensor::Random({tokens, 32}, xr);
    ExpectBitwiseEqual(layer.Forward(v), layer.ForwardEager(v));
  }

  // The whole block is one plan: residual adds, relu, and the q-scale alias
  // in place, and the arena undercuts eager temporaries.
  const PlanStats stats = layer.PlanStatsFor(18);
  EXPECT_GE(stats.num_inplace, 3);
  EXPECT_LT(stats.arena_bytes, stats.sum_temporary_bytes);
}

TEST(PlanExecutorTest, EncoderLayerSparsePlannedMatchesEagerSparseComposition) {
  // Twin modules drawn from the identical Rng stream reproduce the layer's
  // weights exactly; the hand-composed pre-change sparse path (eager
  // attention + FFN-planned sparse) is the bitwise oracle.
  Rng rng(57);
  TransformerEncoderLayer layer(16, 4, 48, rng);
  Rng twin(57);
  MultiHeadAttention attn(16, 4, twin);
  FeedForward ffn(16, 48, twin);
  Tensor ones = Tensor::Full({16}, 1.0f);
  Tensor zeros = Tensor::Zeros({16});

  Rng xr(58);
  Tensor x = Tensor::Random({14, 16}, xr);
  PitCompiler layer_compiler(V100());
  Tensor planned = layer.ForwardSparse(x, layer_compiler);

  PitCompiler eager_compiler(V100());
  Tensor h = Add(x, attn.ForwardEager(LayerNorm(x, ones, zeros)));
  Tensor eager = Add(h, ffn.ForwardSparse(LayerNorm(h, ones, zeros), eager_compiler));
  ExpectBitwiseEqual(planned, eager);
  EXPECT_GT(layer_compiler.kernels_compiled(), 0);
}

TEST(PlanExecutorTest, PlannedTransformerStackMatchesEager) {
  Rng rng(59);
  PlannedTransformerStack stack(2, 16, 2, 48, rng);
  Rng xr(60);
  Tensor x = Tensor::Random({12, 16}, xr);
  Tensor mask = Tensor::RandomSparse({12, 12}, 0.3, xr);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  ExpectBitwiseEqual(stack.Forward(x), stack.ForwardEager(x));
  ExpectBitwiseEqual(stack.Forward(x, &mask), stack.ForwardEager(x, &mask));
  // Re-run with different values through the same cached plans, then at a
  // second token count.
  Tensor y = Tensor::Random({12, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(y), stack.ForwardEager(y));
  Tensor z = Tensor::Random({5, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(z), stack.ForwardEager(z));

  const PlanStats stats = stack.StatsFor(12);
  EXPECT_LT(stats.arena_bytes, stats.sum_temporary_bytes);
  EXPECT_GE(stats.num_inplace, 2 * 3);

  // PIT forward: exact kernels, different float summation order than dense.
  PitCompiler compiler(V100());
  EXPECT_TRUE(AllClose(stack.ForwardPit(x, compiler), stack.ForwardEager(x), 1e-3f, 1e-4f));
}

// ---- Wavefront scheduler (PR 4) --------------------------------------------

// Bitwise-determinism sweep across PIT_PLAN_SCHED x PIT_NUM_THREADS for every
// OpKind: the wavefront schedule must reproduce the sequential oracle (and
// eager execution) exactly at any thread count.
void ExpectSchedulerSweepMatchesEager(Graph& g, const std::map<std::string, Tensor>& feeds) {
  // Gate off: these graphs are deliberately small, and the differential value
  // is in actually dispatching the wavefront path, not in the gate's seq
  // fallback (which would make the sweep vacuously compare seq to seq).
  ScopedWavefrontGate gate_off(false);
  Tensor base;
  {
    ScopedPlanSched sched(PlanSched::kSequential);
    ScopedNumThreads threads(1);
    base = g.Run(feeds);
  }
  ExpectBitwiseEqual(EagerExecute(g, feeds).at(g.size() - 1), base);
  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int t : {1, 4, 7}) {
      ScopedPlanSched sched_guard(sched);
      ScopedNumThreads threads(t);
      ExpectBitwiseEqual(g.Run(feeds), base);
    }
  }
}

TEST(PlanExecutorTest, WavefrontEveryOpKindBitwiseMatchesSequential) {
  Rng rng(63);
  Graph all_ops = BuildAllOpsGraph(40, 24, rng);
  auto all_feeds = AllOpsFeeds(40, 24, 64);
  ExpectSchedulerSweepMatchesEager(all_ops, all_feeds);

  Graph transformer = BuildTransformerOpsGraph(16, 4, 8, rng);
  auto transformer_feeds = TransformerOpsFeeds(16, 32, 65);
  ExpectSchedulerSweepMatchesEager(transformer, transformer_feeds);
}

TEST(PlanExecutorTest, WavefrontInPlaceAliasedStepsMatchSequential) {
  // In-place chains (scale/relu/add aliasing dying blocks) plus independent
  // branches reusing freed arena offsets — the WAR/WAW hazard cases the
  // interval-based dependency derivation must order correctly.
  Rng rng(67);
  Graph g;
  const int x = g.AddInput("x", {24, 24});
  const int m = g.AddInput("m", {24, 24}, 0.5);
  const int w1 = g.AddWeight("w1", Tensor::Random({24, 24}, rng));
  const int w2 = g.AddWeight("w2", Tensor::Random({24, 24}, rng));
  const int mm1 = g.AddMatmul("mm1", x, w1);     // branch 1
  const int mm2 = g.AddMatmul("mm2", x, w2);     // branch 2 (independent)
  const int sc = g.AddScale("sc", mm1, 0.5f);    // aliases mm1 in place
  const int masked = g.AddMask("masked", mm2, m);  // aliases mm2 in place
  const int soft = g.AddSoftmax("soft", sc);
  const int sum = g.AddAdd("sum", soft, masked);
  const int rs = g.AddReshape("rs", sum, {12, 2, 24});
  const int tr = g.AddTranspose("tr", rs, 0, 1);
  const int back = g.AddReshape("back", tr, {24, 24});
  g.AddRelu("out", back);
  g.PropagateSparsity();

  auto feeds = AllOpsFeeds(24, 24, 68);
  ExpectSchedulerSweepMatchesEager(g, feeds);
}

TEST(PlanExecutorTest, WavefrontEncoderLayerHasInterOpParallelism) {
  // The encoder block's q/k/v column-split projections and independent
  // branches must actually land in shared wavefronts: depth strictly below
  // the step count, width above 1.
  Rng rng(69);
  TransformerEncoderLayer layer(32, 4, 96, rng);
  const PlanStats stats = layer.PlanStatsFor(16);
  EXPECT_GT(stats.num_wavefronts, 0);
  EXPECT_LT(stats.num_wavefronts, stats.num_steps);
  EXPECT_GE(stats.max_wavefront_width, 3);  // q/k/v projections at least
  EXPECT_GE(stats.num_fused, 1);            // FFN up-projection + ReLU

  Rng xr(70);
  Tensor x = Tensor::Random({16, 32}, xr);
  ScopedWavefrontGate gate_off(false);  // force real wavefront dispatch
  Tensor base;
  {
    ScopedPlanSched sched(PlanSched::kSequential);
    ScopedNumThreads threads(1);
    base = layer.Forward(x);
    ExpectBitwiseEqual(base, layer.ForwardEager(x));
  }
  for (int t : {4, 7}) {
    ScopedPlanSched sched(PlanSched::kWavefront);
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(layer.Forward(x), base);
  }
}

TEST(PlanExecutorTest, WavefrontPitPathBitwiseMatchesSequentialPit) {
  // PIT steps are chained (the compiler mutates shared state), but the dense
  // steps around them still parallelize — outputs must stay bitwise equal.
  Rng rng(71);
  PlannedFfnStack stack(2, 16, 64, rng);
  Rng xr(72);
  Tensor x = Tensor::Random({24, 16}, xr);
  ScopedWavefrontGate gate_off(false);  // force real wavefront dispatch
  Tensor base;
  {
    ScopedPlanSched sched(PlanSched::kSequential);
    ScopedNumThreads threads(1);
    PitCompiler compiler(V100());
    base = stack.ForwardPit(x, compiler);
  }
  for (int t : {4, 7}) {
    ScopedPlanSched sched(PlanSched::kWavefront);
    ScopedNumThreads threads(t);
    PitCompiler compiler(V100());
    ExpectBitwiseEqual(stack.ForwardPit(x, compiler), base);
  }
}

TEST(PlanExecutorTest, RandomizedGraphFuzzWavefrontMatchesSequential) {
  // Randomized-graph differential fuzz: arbitrary legal op chains (with
  // shared subexpressions, aliasing reshapes, and block-reuse pressure) must
  // replay identically under both schedulers at every thread count.
  ScopedWavefrontGate gate_off(false);  // force real wavefront dispatch
  Rng rng(73);
  for (int trial = 0; trial < 12; ++trial) {
    const int64_t rows = 8 + static_cast<int64_t>(rng.NextBelow(3)) * 4;   // 8/12/16
    const int64_t cols = 8 + static_cast<int64_t>(rng.NextBelow(2)) * 8;   // 8/16
    Graph g;
    g.AddInput("x", {rows, cols});
    std::vector<int> pool{0};  // rank-2 value nodes usable as op inputs
    const int ops = 8 + static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < ops; ++i) {
      const int src = pool[rng.NextBelow(pool.size())];
      const Shape s = g.node(src).shape;
      const std::string name = "n" + std::to_string(i);
      switch (rng.NextBelow(8)) {
        case 0: {  // matmul by a fresh weight (keeps values bounded)
          Tensor w = Tensor::Random({s[1], cols}, rng, -0.3f, 0.3f);
          const int wid = g.AddWeight(name + "_w", std::move(w));
          pool.push_back(g.AddMatmul(name, src, wid));
          break;
        }
        case 1:
          pool.push_back(g.AddRelu(name, src));
          break;
        case 2: {  // add of two same-shape nodes (shared-subexpression fan-in)
          int other = src;
          for (int probe = 0; probe < 4; ++probe) {
            const int cand = pool[rng.NextBelow(pool.size())];
            if (g.node(cand).shape == s) {
              other = cand;
              break;
            }
          }
          pool.push_back(g.AddAdd(name, src, other));
          break;
        }
        case 3:
          pool.push_back(g.AddScale(name, src, 0.75f));
          break;
        case 4:
          pool.push_back(g.AddSoftmax(name, src));
          break;
        case 5:
          pool.push_back(g.AddTranspose(name, src, 0, 1));
          break;
        case 6: {  // reshape round-trip: pure aliases feeding later ops
          const int rs = g.AddReshape(name + "_a", src, {s[0] * s[1]});
          pool.push_back(g.AddReshape(name, rs, s));
          break;
        }
        case 7: {
          int other = src;
          for (int probe = 0; probe < 4; ++probe) {
            const int cand = pool[rng.NextBelow(pool.size())];
            if (g.node(cand).shape == s) {
              other = cand;
              break;
            }
          }
          pool.push_back(g.AddMask(name, src, other));
          break;
        }
      }
    }
    g.PropagateSparsity();
    Rng fr(100 + static_cast<uint64_t>(trial));
    std::map<std::string, Tensor> feeds{{"x", Tensor::Random({rows, cols}, fr)}};
    Tensor base;
    {
      ScopedPlanSched sched(PlanSched::kSequential);
      ScopedNumThreads threads(1);
      base = g.Run(feeds);
      ExpectBitwiseEqual(base, EagerExecute(g, feeds).at(g.size() - 1));
    }
    for (int t : {1, 4, 7}) {
      ScopedPlanSched sched(PlanSched::kWavefront);
      ScopedNumThreads threads(t);
      ASSERT_NO_FATAL_FAILURE(ExpectBitwiseEqual(g.Run(feeds), base))
          << "fuzz trial " << trial << " at " << t << " threads";
    }
  }
}

// ---- 64-byte arena alignment (PR 4 satellite) ------------------------------

TEST(PlanExecutorTest, ArenaBaseAndBlockOffsetsAre64ByteAligned) {
  Rng rng(75);
  TransformerEncoderLayer layer(32, 4, 96, rng);
  Rng xr(76);
  Tensor x = Tensor::Random({18, 32}, xr);
  layer.Forward(x);  // compile the plan

  Graph g = BuildTransformerOpsGraph(12, 4, 8, rng);
  const ExecutionPlan& plan = g.Plan();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(plan.arena_base()) % 64, 0u)
      << "arena base must start on a cache line";
  for (const OpCall& step : plan.steps()) {
    ASSERT_EQ(step.out.loc, ValueLoc::kArena);
    EXPECT_EQ((step.out.offset * static_cast<int64_t>(sizeof(float))) % 64, 0)
        << "block offset of step node " << step.node_id << " not 64-byte aligned";
    EXPECT_EQ(reinterpret_cast<uintptr_t>(plan.arena_base() + step.out.offset) % 64, 0u);
  }
}

// ---- Fused matmul+relu epilogue (PR 4) -------------------------------------

TEST(PlanExecutorTest, FusedMatmulReluBitwiseMatchesUnfusedComposition) {
  Rng rng(77);
  Graph g = BuildFfnGraph(32, 16, 64, rng);  // matmul -> relu -> matmul
  const ExecutionPlan& plan = g.Plan();
  EXPECT_EQ(plan.stats().num_fused, 1);
  EXPECT_EQ(plan.stats().num_steps, 2);  // fused up+relu, down

  Rng xr(78);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({32, 16}, xr)}};
  for (const ComputeBackend backend : {ComputeBackend::kBlocked, ComputeBackend::kReference}) {
    ScopedBackend guard(backend);
    ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
  }

  // Execute elides the fused matmul's value but keeps the ReLU's (bitwise).
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  const int up_id = 3, relu_id = 4;
  ASSERT_EQ(g.node(up_id).kind, OpKind::kMatmul);
  ASSERT_EQ(g.node(relu_id).kind, OpKind::kRelu);
  EXPECT_EQ(planned.count(up_id), 0u);
  ExpectBitwiseEqual(planned.at(relu_id), eager.at(relu_id));
  ExpectBitwiseEqual(planned.at(g.size() - 1), eager.at(g.size() - 1));
}

TEST(PlanExecutorTest, FusionKeepsOperandsLiveUntilTheRelusPosition) {
  // The fused GEMM reads its operands at the ReLU's position. Here z is the
  // nominal last consumer of t and sits BETWEEN the matmul and its ReLU:
  // without lifetime extension z would alias t's block in place (or free it
  // for reuse) and the fused step would read clobbered data — a silent
  // miscompilation even under the sequential oracle.
  Rng rng(81);
  Graph g;
  const int x = g.AddInput("x", {8, 8});
  const int w = g.AddWeight("w", Tensor::Random({8, 8}, rng));
  const int t = g.AddRelu("t", x);
  const int mm = g.AddMatmul("mm", t, w);
  const int z = g.AddScale("z", t, 2.0f);  // last consumer of t by node order
  const int soft = g.AddSoftmax("soft", z);
  const int r = g.AddRelu("r", mm);  // fuses with mm
  g.AddAdd("out", r, soft);
  g.PropagateSparsity();
  ASSERT_EQ(g.Plan().stats().num_fused, 1);  // fusion still engages — safely

  Rng xr(82);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({8, 8}, xr)}};
  ScopedWavefrontGate gate_off(false);  // force real wavefront dispatch
  for (const ComputeBackend backend : {ComputeBackend::kBlocked, ComputeBackend::kReference}) {
    ScopedBackend guard(backend);
    for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
      ScopedPlanSched sched_guard(sched);
      for (int threads : {1, 4}) {
        ScopedNumThreads tguard(threads);
        ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
      }
    }
  }
}

TEST(PlanExecutorTest, MatmulWithSecondConsumerIsNotFused) {
  Rng rng(79);
  Graph g;
  const int x = g.AddInput("x", {8, 8});
  const int w = g.AddWeight("w", Tensor::Random({8, 8}, rng));
  const int mm = g.AddMatmul("mm", x, w);
  const int r = g.AddRelu("r", mm);
  g.AddAdd("out", r, mm);  // second consumer: fusing would lose mm's value
  g.PropagateSparsity();
  const ExecutionPlan& plan = g.Plan();
  EXPECT_EQ(plan.stats().num_fused, 0);

  Rng xr(80);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({8, 8}, xr)}};
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  ASSERT_EQ(eager.size(), planned.size());
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
}

// ---- Plan-cache invalidation race (PR 3 satellite) -------------------------

TEST(PlanExecutorTest, PlanHandleSurvivesConcurrentGraphMutation) {
  // An executor mid-Run must keep its plan (and the plan's compile-time
  // semantics) after AddX invalidates the graph's cache from another thread.
  Rng rng(61);
  Graph g = BuildFfnGraph(16, 8, 32, rng);
  Rng xr(62);
  Tensor x = Tensor::Random({16, 8}, xr);
  std::map<std::string, const Tensor*> feeds{{"x", &x}};

  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();
  Tensor base(Shape{16, 8});
  {
    ConstTensorView out = plan->Run(feeds);
    std::copy(out.data(), out.data() + out.size(), base.data());
  }

  std::atomic<bool> go{false};
  std::thread mutator([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 64; ++i) {
      // Every Add clears the plan cache (liveness/offsets assume the old
      // node list) and reallocates the node vector.
      g.AddRelu("noise_" + std::to_string(i), g.size() - 1);
    }
  });

  go.store(true, std::memory_order_release);
  for (int i = 0; i < 64; ++i) {
    ConstTensorView out = plan->Run(feeds);
    ASSERT_EQ(std::memcmp(out.data(), base.data(),
                          static_cast<size_t>(base.size()) * sizeof(float)),
              0)
        << "stale plan diverged mid-mutation at iteration " << i;
  }
  mutator.join();

  // A fresh plan over the mutated graph compiles and runs the longer chain.
  std::shared_ptr<ExecutionPlan> fresh = g.PlanShared();
  ConstTensorView out = fresh->Run(feeds);
  EXPECT_EQ(out.size(), 16 * 8);
}

// ---- Shared-plan / per-context multi-stream replay (PR 5) ------------------

TEST(PlanExecutorTest, ExecutionContextArenaAlignedAndSized) {
  Rng rng(83);
  Graph g = BuildTransformerOpsGraph(12, 4, 8, rng);
  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();
  ExecutionContext ctx(*plan);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ctx.arena_base()) % 64, 0u)
      << "every context arena must start on a cache line, like the default one";
  EXPECT_EQ(ctx.arena_bytes(), plan->stats().arena_bytes);
  EXPECT_NE(ctx.arena_base(), plan->arena_base()) << "contexts must not share the default arena";
}

TEST(PlanExecutorTest, RunWithContextMatchesDefaultRun) {
  Rng rng(84);
  Graph g = BuildAllOpsGraph(24, 16, rng);
  auto feeds = AllOpsFeeds(24, 16, 85);
  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();

  Tensor base(g.node(g.size() - 1).shape);
  {
    ConstTensorView out = plan->Run(feeds);
    std::copy(out.data(), out.data() + out.size(), base.data());
  }
  ExecutionContext ctx(*plan);
  ConstTensorView out = plan->RunWith(ctx, feeds);
  ExpectBitwiseEqual(Tensor(base.shape(), std::vector<float>(out.data(), out.data() + out.size())),
                     base);
  // Context reuse across changing feed values replays over the same arena.
  auto feeds2 = AllOpsFeeds(24, 16, 86);
  ConstTensorView out2 = plan->RunWith(ctx, feeds2);
  ConstTensorView base2 = plan->Run(feeds2);
  ASSERT_EQ(std::memcmp(out2.data(), base2.data(),
                        static_cast<size_t>(base2.size()) * sizeof(float)),
            0);
}

TEST(PlanExecutorTest, ConcurrentStreamsOverOneSharedPlanAreBitwiseIdentical) {
  // The tentpole contract: one immutable plan, N private contexts, N OS
  // threads replaying concurrently with distinct inputs — every stream's
  // result must be bitwise identical to the single-stream default replay of
  // its own input. Run under both schedulers and several pool widths (the
  // pool is shared infrastructure the streams' nested kernels contend on).
  Rng rng(87);
  Graph g = BuildAllOpsGraph(20, 12, rng);
  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();
  // Gate off so the wavefront iterations genuinely dispatch concurrent plan
  // steps from several OS threads at once — the strongest TSan surface this
  // suite has (concurrent ParallelTasks jobs over one shared pool).
  ScopedWavefrontGate gate_off(false);

  constexpr int kStreams = 4;
  constexpr int kRepeats = 8;
  std::vector<std::map<std::string, Tensor>> feeds;
  std::vector<Tensor> expected;
  for (int s = 0; s < kStreams; ++s) {
    feeds.push_back(AllOpsFeeds(20, 12, 90 + static_cast<uint64_t>(s)));
    ConstTensorView out = plan->Run(feeds.back());
    expected.emplace_back(g.node(g.size() - 1).shape,
                          std::vector<float>(out.data(), out.data() + out.size()));
  }

  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int t : {1, 4}) {
      ScopedPlanSched sched_guard(sched);
      ScopedNumThreads threads(t);
      std::vector<std::unique_ptr<ExecutionContext>> contexts;
      for (int s = 0; s < kStreams; ++s) {
        contexts.push_back(std::make_unique<ExecutionContext>(*plan));
      }
      std::atomic<int> failures{0};
      std::vector<std::thread> workers;
      for (int s = 0; s < kStreams; ++s) {
        workers.emplace_back([&, s] {
          for (int r = 0; r < kRepeats; ++r) {
            ConstTensorView out =
                plan->RunWith(*contexts[static_cast<size_t>(s)], feeds[static_cast<size_t>(s)]);
            if (std::memcmp(out.data(), expected[static_cast<size_t>(s)].data(),
                            static_cast<size_t>(out.size()) * sizeof(float)) != 0) {
              failures.fetch_add(1);
            }
          }
        });
      }
      for (auto& w : workers) {
        w.join();
      }
      EXPECT_EQ(failures.load(), 0)
          << "stream diverged from single-stream replay (sched="
          << (sched == PlanSched::kWavefront ? "wavefront" : "seq") << ", threads=" << t << ")";
    }
  }
}

TEST(PlanExecutorTest, ContextFromAnotherPlanIsRejected) {
  Rng rng(88);
  Graph g1 = BuildFfnGraph(8, 8, 16, rng);
  Graph g2 = BuildFfnGraph(8, 8, 16, rng);
  std::shared_ptr<ExecutionPlan> p1 = g1.PlanShared();
  std::shared_ptr<ExecutionPlan> p2 = g2.PlanShared();
  ExecutionContext ctx(*p2);
  Rng xr(89);
  Tensor x = Tensor::Random({8, 8}, xr);
  std::map<std::string, const Tensor*> feeds{{"x", &x}};
  EXPECT_DEATH(p1->RunWith(ctx, feeds), "different plan");
}

TEST(PlanExecutorTest, EncoderLayerStreamsForwardConcurrently) {
  // The nn seam: MakeStream hands out per-stream state over the layer's
  // cached plan; concurrent ForwardWith calls (distinct streams, shared
  // immutable plan) must match ForwardInto bitwise.
  Rng rng(91);
  TransformerEncoderLayer layer(32, 4, 96, rng);
  constexpr int kStreams = 3;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  Rng xr(92);
  for (int s = 0; s < kStreams; ++s) {
    inputs.push_back(Tensor::Random({16, 32}, xr));
    expected.push_back(layer.Forward(inputs.back()));
  }
  ScopedNumThreads threads(4);
  std::vector<TransformerEncoderLayer::Stream> streams;
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(layer.MakeStream(16, /*masked=*/false));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int s = 0; s < kStreams; ++s) {
    workers.emplace_back([&, s] {
      Tensor out(Shape{16, 32});
      for (int r = 0; r < 6; ++r) {
        layer.ForwardWith(streams[static_cast<size_t>(s)], inputs[static_cast<size_t>(s)],
                          nullptr, nullptr, &out);
        if (std::memcmp(out.data(), expected[static_cast<size_t>(s)].data(),
                        static_cast<size_t>(out.size()) * sizeof(float)) != 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// ---- Wavefront profitability gate (PR 5 satellite) -------------------------

TEST(PlanExecutorTest, WavefrontGateKeepsSmallStepPlansSequential) {
  // Serving-size encoder blocks carry ~17 MFLOP projection GEMMs in their
  // widest wave — BENCH_pr4 measured wavefront replay losing there, so the
  // compile-time gate must mark them unprofitable (replay falls back to seq
  // and each kernel keeps the whole pool).
  Rng rng(93);
  TransformerEncoderLayer layer(256, 8, 1024, rng);
  const PlanStats stats = layer.PlanStatsFor(128);
  EXPECT_GT(stats.max_wavefront_width, 1);
  EXPECT_GT(stats.parallel_step_work, 0.0);
  EXPECT_FALSE(stats.wavefront_profitable)
      << "mean parallel-step work " << stats.parallel_step_work
      << " should fall below the gate threshold";
}

TEST(PlanExecutorTest, WavefrontGateEngagesForLargeIndependentSteps) {
  // Four independent 384^3 GEMMs (~113 MFLOP each) in one wave: big enough
  // that inter-op overlap amortizes the task dispatch — the gate must keep
  // wavefront replay on, and the schedule must stay bitwise equal to seq.
  Rng rng(94);
  Graph g;
  const int x = g.AddInput("x", {384, 384});
  std::vector<int> branches;
  for (int b = 0; b < 4; ++b) {
    const int w = g.AddWeight("w" + std::to_string(b),
                              Tensor::Random({384, 384}, rng, -0.1f, 0.1f));
    branches.push_back(g.AddMatmul("mm" + std::to_string(b), x, w));
  }
  const int s1 = g.AddAdd("s1", branches[0], branches[1]);
  const int s2 = g.AddAdd("s2", branches[2], branches[3]);
  g.AddAdd("out", s1, s2);
  g.PropagateSparsity();

  const ExecutionPlan& plan = g.Plan();
  EXPECT_GE(plan.stats().max_wavefront_width, 4);
  EXPECT_TRUE(plan.stats().wavefront_profitable)
      << "mean parallel-step work " << plan.stats().parallel_step_work;

  Rng xr(95);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({384, 384}, xr)}};
  Tensor base;
  {
    ScopedPlanSched sched(PlanSched::kSequential);
    ScopedNumThreads threads(1);
    base = g.Run(feeds);
  }
  ScopedPlanSched sched(PlanSched::kWavefront);
  ScopedNumThreads threads(4);
  ExpectBitwiseEqual(g.Run(feeds), base);  // gate-on wavefront dispatch, bitwise
}

// ---- Cooperative cancellation (PR 10) --------------------------------------

TEST(PlanExecutorTest, PreCancelledTokenStopsReplayBeforeAnyStep) {
  Rng rng(96);
  Graph g = BuildAllOpsGraph(24, 16, rng);
  auto feeds = AllOpsFeeds(24, 16, 97);
  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();
  ExecutionContext ctx(*plan);
  CancelToken token;
  token.Cancel();
  ctx.set_cancel_token(&token);
  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    ScopedWavefrontGate gate_off(false);
    ScopedPlanSched sched_guard(sched);
    (void)plan->RunWith(ctx, feeds);
    EXPECT_EQ(ctx.replay_status(), ReplayStatus::kCancelled);
  }
}

TEST(PlanExecutorTest, MidReplayCancelStopsAtStepBoundaryAndResetRecovers) {
  Rng rng(98);
  Graph g = BuildAllOpsGraph(24, 16, rng);
  auto feeds = AllOpsFeeds(24, 16, 99);
  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();
  ASSERT_GE(plan->stats().num_steps, 3) << "need at least three steps to cancel between";
  ExecutionContext ctx(*plan);

  Tensor base(g.node(g.size() - 1).shape);
  {
    ConstTensorView out = plan->RunWith(ctx, feeds);
    ASSERT_EQ(ctx.replay_status(), ReplayStatus::kOk);
    std::copy(out.data(), out.data() + out.size(), base.data());
  }

  // Observer-driven deterministic mid-replay cancel: observed runs replay
  // sequentially, so firing the token after the first compute step must stop
  // the replay at the very next step boundary.
  CancelToken token;
  ctx.set_cancel_token(&token);
  int steps_seen = 0;
  const StepObserver observer = [&](int /*node_id*/, ConstTensorView /*value*/) {
    if (++steps_seen == 1) {
      token.Cancel();
    }
  };
  (void)plan->RunWith(ctx, feeds, nullptr, &observer);
  EXPECT_EQ(ctx.replay_status(), ReplayStatus::kCancelled);
  EXPECT_EQ(steps_seen, 1) << "replay must not dispatch past the cancelled boundary";

  // Reset + rerun through the same context: bitwise identical to the
  // uncancelled replay (the abandoned partial arena state is fully dead).
  token.Reset();
  ConstTensorView out = plan->RunWith(ctx, feeds);
  EXPECT_EQ(ctx.replay_status(), ReplayStatus::kOk);
  ExpectBitwiseEqual(
      Tensor(base.shape(), std::vector<float>(out.data(), out.data() + out.size())), base);
}

TEST(PlanExecutorTest, LapsedDeadlineCancelsReplayUnderBothSchedulers) {
  Rng rng(100);
  Graph g = BuildAllOpsGraph(24, 16, rng);
  auto feeds = AllOpsFeeds(24, 16, 101);
  std::shared_ptr<ExecutionPlan> plan = g.PlanShared();
  ExecutionContext ctx(*plan);
  CancelToken token;
  ctx.set_cancel_token(&token);
  for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    for (int t : {1, 4}) {
      ScopedWavefrontGate gate_off(false);
      ScopedPlanSched sched_guard(sched);
      ScopedNumThreads threads(t);
      token.ArmDeadline(SteadyNowUs() - 1);  // already lapsed
      (void)plan->RunWith(ctx, feeds);
      EXPECT_EQ(ctx.replay_status(), ReplayStatus::kCancelled);
      EXPECT_TRUE(token.deadline_lapsed());
      EXPECT_FALSE(token.cancelled_manual());
      token.ClearDeadline();
      ConstTensorView out = plan->RunWith(ctx, feeds);
      EXPECT_EQ(ctx.replay_status(), ReplayStatus::kOk);
      EXPECT_GT(out.size(), 0);
    }
  }
}

TEST(PlanExecutorTest, CancelTokenStateMachine) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_armed());
  token.ArmDeadline(SteadyNowUs() + 60'000'000);  // a minute out: not lapsed
  EXPECT_TRUE(token.deadline_armed());
  EXPECT_FALSE(token.cancelled());
  token.ArmDeadline(SteadyNowUs() - 1);
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.deadline_lapsed());
  EXPECT_FALSE(token.cancelled_manual());
  token.ClearDeadline();
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled_manual());
  token.ClearDeadline();  // clearing the deadline must not clear a manual cancel
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_armed());
}

}  // namespace
}  // namespace pit
