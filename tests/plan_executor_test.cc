// Differential suite for the planned graph executor: plan execution must be
// bitwise identical to eager (pre-refactor) execution for every OpKind, under
// arena/in-place buffer reuse, across plan reuse with changing input values,
// and for any thread count.
#include <gtest/gtest.h>

#include <cstring>

#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/graph/execution_plan.h"
#include "pit/graph/graph.h"
#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)), 0)
      << "max abs diff " << MaxAbsDiff(a, b);
}

// The pre-refactor eager executor, kept verbatim here as the oracle: one
// fresh Tensor per node, direct op calls.
std::map<int, Tensor> EagerExecute(const Graph& g, const std::map<std::string, Tensor>& feeds,
                                   const std::vector<MatmulDecision>* decisions = nullptr,
                                   PitCompiler* compiler = nullptr) {
  auto decision_for = [&](int id) -> const MatmulDecision* {
    if (decisions == nullptr) {
      return nullptr;
    }
    for (const auto& d : *decisions) {
      if (d.node_id == id) {
        return &d;
      }
    }
    return nullptr;
  };
  std::map<int, Tensor> values;
  for (int id = 0; id < g.size(); ++id) {
    const GraphNode& n = g.node(id);
    switch (n.kind) {
      case OpKind::kInput:
        values.emplace(id, feeds.at(n.name));
        break;
      case OpKind::kWeight:
        values.emplace(id, g.weight(id));
        break;
      case OpKind::kMatmul: {
        const MatmulDecision* d = decision_for(id);
        if (d != nullptr && d->use_pit) {
          values.emplace(id,
                         compiler->SparseMatmul(values.at(n.inputs[0]), values.at(n.inputs[1]))
                             .output);
        } else {
          values.emplace(id, MatMul(values.at(n.inputs[0]), values.at(n.inputs[1])));
        }
        break;
      }
      case OpKind::kMatmulBias: {
        const MatmulDecision* d = decision_for(id);
        if (d != nullptr && d->use_pit) {
          Tensor y = compiler->SparseMatmul(values.at(n.inputs[0]), values.at(n.inputs[1]))
                         .output;
          const Tensor& bias = values.at(n.inputs[2]);
          for (int64_t i = 0; i < y.dim(0); ++i) {
            for (int64_t j = 0; j < y.dim(1); ++j) {
              y.At(i, j) += bias[j];
            }
          }
          values.emplace(id, std::move(y));
        } else {
          values.emplace(id, MatMulBias(values.at(n.inputs[0]), values.at(n.inputs[1]),
                                        values.at(n.inputs[2])));
        }
        break;
      }
      case OpKind::kRelu:
        values.emplace(id, Relu(values.at(n.inputs[0])));
        break;
      case OpKind::kAdd:
        values.emplace(id, Add(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kMask:
        values.emplace(id, ApplyMask(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kSoftmax:
        values.emplace(id, Softmax(values.at(n.inputs[0])));
        break;
    }
  }
  return values;
}

// A graph touching every OpKind: two inputs, two weights, matmul,
// matmul_bias, mask, softmax, add, relu.
Graph BuildAllOpsGraph(int64_t tokens, int64_t hidden, Rng& rng) {
  Graph g;
  const int x = g.AddInput("x", {tokens, hidden});
  const int m = g.AddInput("m", {tokens, tokens}, /*expected_sparsity=*/0.8);
  const int w = g.AddWeight("w", Tensor::Random({hidden, tokens}, rng));
  const int bias = g.AddWeight("bias", Tensor::Random({tokens}, rng));
  const int mm = g.AddMatmul("mm", x, w);           // [tokens, tokens]
  const int mb = g.AddMatmulBias("mb", x, w, bias);  // [tokens, tokens]
  const int masked = g.AddMask("masked", mm, m);
  const int soft = g.AddSoftmax("soft", masked);
  const int sum = g.AddAdd("sum", mb, soft);
  g.AddRelu("out", sum);
  g.PropagateSparsity();
  return g;
}

std::map<std::string, Tensor> AllOpsFeeds(int64_t tokens, int64_t hidden, uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Random({tokens, hidden}, rng);
  Tensor m = Tensor::RandomSparse({tokens, tokens}, 0.8, rng);
  for (int64_t i = 0; i < m.size(); ++i) {
    m[i] = m[i] != 0.0f ? 1.0f : 0.0f;
  }
  return {{"x", x}, {"m", m}};
}

TEST(PlanExecutorTest, EveryOpKindBitwiseMatchesEager) {
  Rng rng(1);
  Graph g = BuildAllOpsGraph(24, 16, rng);
  auto feeds = AllOpsFeeds(24, 16, 2);
  auto eager = EagerExecute(g, feeds);
  auto planned = g.Execute(feeds);
  ASSERT_EQ(eager.size(), planned.size());
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
}

TEST(PlanExecutorTest, ReferenceBackendAlsoBitwiseMatches) {
  ScopedBackend guard(ComputeBackend::kReference);
  Rng rng(3);
  Graph g = BuildAllOpsGraph(16, 8, rng);
  auto feeds = AllOpsFeeds(16, 8, 4);
  ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
}

TEST(PlanExecutorTest, InPlaceAliasingIsExactAndActuallyHappens) {
  // relu(relu(mask(matmul))) — three elementwise steps, each consuming a
  // dying arena value: all should alias in place.
  Rng rng(5);
  Graph g;
  const int x = g.AddInput("x", {32, 32});
  const int m = g.AddInput("m", {32, 32}, 0.5);
  const int w = g.AddWeight("w", Tensor::Random({32, 32}, rng));
  const int mm = g.AddMatmul("mm", x, w);
  const int masked = g.AddMask("masked", mm, m);
  const int r1 = g.AddRelu("r1", masked);
  g.AddAdd("r2", r1, r1);  // duplicate operand: Add(x, x) aliasing
  g.PropagateSparsity();

  const ExecutionPlan& plan = g.Plan();
  EXPECT_GE(plan.stats().num_inplace, 2);
  // In-place steps share the matmul's block: peak arena < sum of temporaries.
  EXPECT_LT(plan.stats().arena_bytes, plan.stats().sum_temporary_bytes);

  auto feeds = AllOpsFeeds(32, 32, 6);
  feeds["x"] = Tensor::Random({32, 32}, rng);
  ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
}

TEST(PlanExecutorTest, PlanReuseAcrossChangingInputValues) {
  Rng rng(7);
  Graph g = BuildAllOpsGraph(20, 12, rng);
  ExecutionPlan* first = &g.Plan();
  for (uint64_t seed = 10; seed < 14; ++seed) {
    auto feeds = AllOpsFeeds(20, 12, seed);
    ExpectBitwiseEqual(g.Run(feeds), EagerExecute(g, feeds).at(g.size() - 1));
    // Same compiled plan object every iteration (no recompilation).
    EXPECT_EQ(&g.Plan(), first);
  }
}

TEST(PlanExecutorTest, PitPathBitwiseMatchesEagerPit) {
  // FFN down-projection fed by ReLU (k-axis gather) plus an externally
  // row-sparse input (m-axis gather) — both PIT kernels under plan dispatch.
  Rng rng(8);
  Graph g;
  const int x = g.AddInput("x", {48, 16}, /*expected_sparsity=*/0.5);
  const int w1 = g.AddWeight("w1", Tensor::Random({16, 64}, rng));
  const int w2 = g.AddWeight("w2", Tensor::Random({64, 16}, rng));
  const int proj = g.AddMatmul("proj", x, w1);  // m-axis candidate
  const int act = g.AddRelu("act", proj);
  g.AddMatmul("down", act, w2);  // k-axis candidate
  g.PropagateSparsity();
  auto decisions = g.PitPass();
  ASSERT_TRUE(decisions[0].use_pit);
  ASSERT_TRUE(decisions[1].use_pit);

  Rng xr(9);
  Tensor xv = Tensor::RandomBlockSparse(48, 16, 1, 16, 0.5, xr);
  std::map<std::string, Tensor> feeds{{"x", xv}};

  PitCompiler eager_compiler(V100());
  auto eager = EagerExecute(g, feeds, &decisions, &eager_compiler);
  PitCompiler planned_compiler(V100());
  auto planned = g.Execute(feeds, &decisions, &planned_compiler);
  for (const auto& [id, value] : eager) {
    ExpectBitwiseEqual(planned.at(id), value);
  }
  EXPECT_EQ(planned_compiler.kernels_compiled(), eager_compiler.kernels_compiled());
}

TEST(PlanExecutorTest, PitHandleHitsCacheOnRepeatExecutions) {
  Rng rng(11);
  Graph g = BuildFfnGraph(32, 16, 64, rng);
  auto decisions = g.PitPass();
  PitCompiler compiler(V100());
  Rng xr(12);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({32, 16}, xr)}};
  g.Run(feeds, &decisions, &compiler);
  const int64_t compiled_once = compiler.kernels_compiled();
  for (int i = 0; i < 3; ++i) {
    g.Run(feeds, &decisions, &compiler);
  }
  EXPECT_EQ(compiler.kernels_compiled(), compiled_once);  // no re-selection
  EXPECT_GE(compiler.cache_hits(), 3);
}

TEST(PlanExecutorTest, DeterministicAcrossThreadCounts) {
  Rng rng(13);
  Graph g = BuildAllOpsGraph(40, 24, rng);
  auto feeds = AllOpsFeeds(40, 24, 14);
  Tensor base;
  {
    ScopedNumThreads threads(1);
    base = g.Run(feeds);
  }
  for (int t : {4, 7}) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(g.Run(feeds), base);
  }
}

TEST(PlanExecutorTest, PitDeterministicAcrossThreadCounts) {
  Rng rng(15);
  Graph g = BuildFfnGraph(32, 16, 64, rng);
  auto decisions = g.PitPass();
  Rng xr(16);
  std::map<std::string, Tensor> feeds{{"x", Tensor::Random({32, 16}, xr)}};
  Tensor base;
  {
    ScopedNumThreads threads(1);
    PitCompiler compiler(V100());
    base = g.Run(feeds, &decisions, &compiler);
  }
  for (int t : {4, 7}) {
    ScopedNumThreads threads(t);
    PitCompiler compiler(V100());
    ExpectBitwiseEqual(g.Run(feeds, &decisions, &compiler), base);
  }
}

TEST(PlanExecutorTest, ArenaSmallerThanSumOfTemporaries) {
  Rng rng(17);
  Graph g = BuildFfnGraph(64, 32, 128, rng);
  const PlanStats& stats = g.Plan().stats();
  EXPECT_GT(stats.num_steps, 1);
  EXPECT_LT(stats.arena_bytes, stats.sum_temporary_bytes);
}

TEST(PlanExecutorTest, FeedForwardPlannedMatchesManualEager) {
  Rng rng(19);
  FeedForward ffn(16, 64, rng);
  // Twin Linears drawn from the identical Rng stream: bitwise-equal weights.
  Rng twin(19);
  Linear up(16, 64, twin);
  Linear down(64, 16, twin);

  Rng xr(20);
  Tensor x = Tensor::Random({24, 16}, xr);
  Tensor act = Relu(up.Forward(x));
  ExpectBitwiseEqual(ffn.Forward(x), down.Forward(act));
  EXPECT_DOUBLE_EQ(ffn.last_activation_sparsity(), act.SparsityRatio());

  // Sparse path: planned PIT dispatch vs the eager sparse Linear.
  PitCompiler planned_compiler(V100());
  PitCompiler eager_compiler(V100());
  ExpectBitwiseEqual(ffn.ForwardSparse(x, planned_compiler),
                     down.ForwardSparse(act, eager_compiler));

  // A different token count compiles a second plan over the same weights.
  Tensor x2 = Tensor::Random({7, 16}, xr);
  ExpectBitwiseEqual(ffn.Forward(x2), down.Forward(Relu(up.Forward(x2))));
}

TEST(PlanExecutorTest, PlannedFfnStackMatchesEagerReference) {
  Rng rng(21);
  PlannedFfnStack stack(3, 16, 48, rng);
  Rng xr(22);
  Tensor x = Tensor::Random({20, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(x), stack.ForwardEager(x));
  // Re-run with different values through the same cached plans.
  Tensor y = Tensor::Random({20, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(y), stack.ForwardEager(y));
  // And at a second token count (fresh plans, same weights).
  Tensor z = Tensor::Random({9, 16}, xr);
  ExpectBitwiseEqual(stack.Forward(z), stack.ForwardEager(z));

  const PlanStats stats = stack.StatsFor(20);
  EXPECT_EQ(stats.num_steps, 3 * 4);  // 4 compute nodes per layer
  EXPECT_GE(stats.num_inplace, 3);    // residual add aliases per layer
  EXPECT_LT(stats.arena_bytes, stats.sum_temporary_bytes);
}

TEST(PlanExecutorTest, PlannedFfnStackPitMatchesEagerPit) {
  Rng rng(23);
  PlannedFfnStack stack(2, 16, 64, rng);
  Rng xr(24);
  Tensor x = Tensor::Random({24, 16}, xr);
  PitCompiler compiler(V100());
  Tensor pit = stack.ForwardPit(x, compiler);
  // The PIT kernels are exact, so against the dense reference only float
  // ordering differs: compare with a tolerance.
  EXPECT_TRUE(AllClose(pit, stack.ForwardEager(x), 1e-3f, 1e-4f));
  EXPECT_GT(compiler.kernels_compiled(), 0);
}

}  // namespace
}  // namespace pit
