#include <gtest/gtest.h>

#include "pit/core/nm_sparse.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(NmAnalysisTest, ClassifiesHandBuiltTiles) {
  Tensor t = Tensor::Zeros({1, 12});
  // Tile 0: all zero. Tile 1: 2 nonzeros (conforming). Tile 2: 3 (dense).
  t.At(0, 4) = 1.0f;
  t.At(0, 6) = 1.0f;
  t.At(0, 8) = 1.0f;
  t.At(0, 9) = 1.0f;
  t.At(0, 10) = 1.0f;
  NmTileStats stats = AnalyzeNmPattern(t);
  EXPECT_EQ(stats.total, 3);
  EXPECT_EQ(stats.all_zero, 1);
  EXPECT_EQ(stats.conforming, 1);
  EXPECT_EQ(stats.dense, 1);
}

TEST(NmAnalysisTest, GeneratorHitsRequestedFractions) {
  Rng rng(1);
  Tensor t = MakeNmMixedTensor(256, 256, 0.5, 0.3, rng);
  NmTileStats stats = AnalyzeNmPattern(t);
  EXPECT_NEAR(stats.AllZeroFraction(), 0.5, 0.03);
  EXPECT_NEAR(stats.ConformingFraction(), 0.3, 0.03);
  EXPECT_NEAR(stats.DenseFraction(), 0.2, 0.03);
}

TEST(NmAnalysisTest, FractionsSumToOne) {
  Rng rng(2);
  Tensor t = MakeNmMixedTensor(64, 64, 0.2, 0.6, rng);
  NmTileStats stats = AnalyzeNmPattern(t);
  EXPECT_EQ(stats.all_zero + stats.conforming + stats.dense, stats.total);
}

TEST(NmCostTest, StrictInfeasibleWithDenseTiles) {
  CostModel model(V100(), Precision::kFp16);
  Rng rng(3);
  NmTileStats stats = AnalyzeNmPattern(MakeNmMixedTensor(128, 128, 0.3, 0.4, rng));
  NmCostComparison cmp = CompareNmStrategies(model, stats, 4096, 4096, 4096);
  EXPECT_FALSE(cmp.strict_24_feasible);
  // Infeasible strict 2:4 falls back to the dense-TC cost.
  EXPECT_DOUBLE_EQ(cmp.strict_24_us, cmp.dense_tc_us);
}

TEST(NmCostTest, StrictFeasibleWhenFullyConforming) {
  CostModel model(V100(), Precision::kFp16);
  Rng rng(4);
  NmTileStats stats = AnalyzeNmPattern(MakeNmMixedTensor(128, 128, 0.3, 0.7, rng));
  ASSERT_EQ(stats.dense, 0);
  NmCostComparison cmp = CompareNmStrategies(model, stats, 4096, 4096, 4096);
  EXPECT_TRUE(cmp.strict_24_feasible);
  EXPECT_NEAR(cmp.strict_24_us, cmp.dense_tc_us / 2.0, 1e-9);
}

TEST(NmCostTest, PitAugmentationBeatsBothOnMixedPatterns) {
  // The future-work claim: with many all-zero tiles plus conforming tiles,
  // PIT routing beats dense TC (skips zeros) AND strict 2:4 (which cannot
  // skip the all-zero tiles, and is infeasible here anyway).
  CostModel model(V100(), Precision::kFp16);
  Rng rng(5);
  NmTileStats stats = AnalyzeNmPattern(MakeNmMixedTensor(256, 256, 0.6, 0.3, rng));
  NmCostComparison cmp = CompareNmStrategies(model, stats, 4096, 4096, 4096);
  EXPECT_LT(cmp.pit_augmented_us, cmp.dense_tc_us);
  EXPECT_LT(cmp.pit_augmented_us, cmp.strict_24_us);
}

TEST(NmCostTest, PitAugmentationNearStrictOnPureConforming) {
  // With no all-zero and no dense tiles, PIT ~ strict 2:4 plus small
  // SRead/index overheads.
  CostModel model(V100(), Precision::kFp16);
  Rng rng(6);
  NmTileStats stats = AnalyzeNmPattern(MakeNmMixedTensor(256, 256, 0.0, 1.0, rng));
  NmCostComparison cmp = CompareNmStrategies(model, stats, 4096, 4096, 4096);
  EXPECT_TRUE(cmp.strict_24_feasible);
  EXPECT_LT(cmp.pit_augmented_us / cmp.strict_24_us, 1.15);
  EXPECT_GT(cmp.pit_augmented_us, cmp.strict_24_us);  // overheads are real
}

TEST(NmFunctionalTest, AugmentedMatmulExact) {
  Rng rng(7);
  Tensor a = MakeNmMixedTensor(32, 64, 0.4, 0.4, rng);
  Tensor b = Tensor::Random({64, 16}, rng);
  EXPECT_TRUE(AllClose(NmAugmentedMatmul(a, b), MatMul(a, b)));
}

}  // namespace
}  // namespace pit
