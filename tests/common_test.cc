#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/common/rng.h"

namespace pit {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kTrials;
  const double var = sum2 / kTrials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, FloatRangeRespected) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextFloat(2.0f, 5.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

// ---- Environment-variable parsing: misconfiguration must fail loudly, never
// silently fall back to a default the operator did not ask for. ----

TEST(EnvParsingTest, NumThreadsAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseNumThreadsEnv("1"), 1);
  EXPECT_EQ(ParseNumThreadsEnv("4"), 4);
  EXPECT_EQ(ParseNumThreadsEnv("7"), 7);
  EXPECT_EQ(ParseNumThreadsEnv("128"), 128);
}

TEST(EnvParsingTest, NumThreadsRejectsNonNumeric) {
  EXPECT_DEATH(ParseNumThreadsEnv("abc"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("4x"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("3.5"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv(""), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv(" 4"), "PIT_NUM_THREADS");
}

TEST(EnvParsingTest, NumThreadsRejectsZeroAndNegative) {
  EXPECT_DEATH(ParseNumThreadsEnv("0"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("-1"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("-128"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("99999999999999999999"), "PIT_NUM_THREADS");
}

TEST(EnvParsingTest, BackendAcceptsKnownNames) {
  EXPECT_EQ(ParseBackendEnv("blocked"), ComputeBackend::kBlocked);
  EXPECT_EQ(ParseBackendEnv("reference"), ComputeBackend::kReference);
}

TEST(EnvParsingTest, BackendRejectsUnknownNames) {
  EXPECT_DEATH(ParseBackendEnv("Reference"), "PIT_BACKEND");
  EXPECT_DEATH(ParseBackendEnv("naive"), "PIT_BACKEND");
  EXPECT_DEATH(ParseBackendEnv(""), "PIT_BACKEND");
  EXPECT_DEATH(ParseBackendEnv("blocked "), "PIT_BACKEND");
}

}  // namespace
}  // namespace pit
