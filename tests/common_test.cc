#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/cancellation.h"
#include "pit/common/fault_injection.h"
#include "pit/common/parallel_for.h"
#include "pit/common/rng.h"
#include "pit/runtime/serving_engine.h"

namespace pit {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kTrials;
  const double var = sum2 / kTrials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, FloatRangeRespected) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextFloat(2.0f, 5.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

// ---- Environment-variable parsing: misconfiguration must fail loudly, never
// silently fall back to a default the operator did not ask for. ----

TEST(EnvParsingTest, NumThreadsAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseNumThreadsEnv("1"), 1);
  EXPECT_EQ(ParseNumThreadsEnv("4"), 4);
  EXPECT_EQ(ParseNumThreadsEnv("7"), 7);
  EXPECT_EQ(ParseNumThreadsEnv("128"), 128);
}

TEST(EnvParsingTest, NumThreadsRejectsNonNumeric) {
  EXPECT_DEATH(ParseNumThreadsEnv("abc"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("4x"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("3.5"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv(""), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv(" 4"), "PIT_NUM_THREADS");
}

TEST(EnvParsingTest, NumThreadsRejectsZeroAndNegative) {
  EXPECT_DEATH(ParseNumThreadsEnv("0"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("-1"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("-128"), "PIT_NUM_THREADS");
  EXPECT_DEATH(ParseNumThreadsEnv("99999999999999999999"), "PIT_NUM_THREADS");
}

TEST(EnvParsingTest, NumStreamsAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseNumStreamsEnv("1"), 1);
  EXPECT_EQ(ParseNumStreamsEnv("4"), 4);
  EXPECT_EQ(ParseNumStreamsEnv("8"), 8);
  EXPECT_EQ(ParseNumStreamsEnv("128"), 128);
}

TEST(EnvParsingTest, NumStreamsRejectsNonNumeric) {
  EXPECT_DEATH(ParseNumStreamsEnv("abc"), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv("4x"), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv("2.5"), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv(""), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv(" 4"), "PIT_NUM_STREAMS");
}

TEST(EnvParsingTest, NumStreamsRejectsZeroAndNegative) {
  EXPECT_DEATH(ParseNumStreamsEnv("0"), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv("-1"), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv("-8"), "PIT_NUM_STREAMS");
  EXPECT_DEATH(ParseNumStreamsEnv("99999999999999999999"), "PIT_NUM_STREAMS");
}

TEST(EnvParsingTest, BatchTokensAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseBatchTokensEnv("1"), 1);
  EXPECT_EQ(ParseBatchTokensEnv("256"), 256);
  EXPECT_EQ(ParseBatchTokensEnv("512"), 512);
  EXPECT_EQ(ParseBatchTokensEnv("65536"), 65536);
}

TEST(EnvParsingTest, BatchTokensRejectsNonNumeric) {
  EXPECT_DEATH(ParseBatchTokensEnv("abc"), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv("256x"), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv("1.5"), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv(""), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv(" 256"), "PIT_BATCH_TOKENS");
}

TEST(EnvParsingTest, BatchTokensRejectsZeroNegativeAndOverflow) {
  EXPECT_DEATH(ParseBatchTokensEnv("0"), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv("-4"), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv("65537"), "PIT_BATCH_TOKENS");
  EXPECT_DEATH(ParseBatchTokensEnv("99999999999999999999"), "PIT_BATCH_TOKENS");
}

TEST(EnvParsingTest, BatchWindowAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseBatchWindowEnv("1"), 1);
  EXPECT_EQ(ParseBatchWindowEnv("8"), 8);
  EXPECT_EQ(ParseBatchWindowEnv("64"), 64);
}

TEST(EnvParsingTest, BatchWindowRejectsNonNumeric) {
  EXPECT_DEATH(ParseBatchWindowEnv("abc"), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv("8x"), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv("2.5"), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv(""), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv(" 8"), "PIT_BATCH_WINDOW");
}

TEST(EnvParsingTest, BatchWindowRejectsZeroNegativeAndOverflow) {
  EXPECT_DEATH(ParseBatchWindowEnv("0"), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv("-1"), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv("65537"), "PIT_BATCH_WINDOW");
  EXPECT_DEATH(ParseBatchWindowEnv("99999999999999999999"), "PIT_BATCH_WINDOW");
}

TEST(EnvParsingTest, ServeDeadlineAcceptsWideMicrosecondRange) {
  EXPECT_EQ(ParseServeDeadlineEnv("1"), 1);
  EXPECT_EQ(ParseServeDeadlineEnv("250000"), 250000);
  EXPECT_EQ(ParseServeDeadlineEnv("100000000"), 100000000);    // beyond the count ceiling
  EXPECT_EQ(ParseServeDeadlineEnv("86400000000"), 86400000000LL);  // one day
}

TEST(EnvParsingTest, ServeDeadlineRejectsNonNumeric) {
  EXPECT_DEATH(ParseServeDeadlineEnv("abc"), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv("250ms"), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv("2.5"), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv(""), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv(" 250"), "PIT_SERVE_DEADLINE_US");
}

TEST(EnvParsingTest, ServeDeadlineRejectsZeroNegativeAndOverflow) {
  EXPECT_DEATH(ParseServeDeadlineEnv("0"), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv("-1"), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv("86400000001"), "PIT_SERVE_DEADLINE_US");
  EXPECT_DEATH(ParseServeDeadlineEnv("99999999999999999999"), "PIT_SERVE_DEADLINE_US");
}

TEST(EnvParsingTest, ServeQueueAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseServeQueueEnv("1"), 1);
  EXPECT_EQ(ParseServeQueueEnv("64"), 64);
  EXPECT_EQ(ParseServeQueueEnv("65536"), 65536);
}

TEST(EnvParsingTest, ServeQueueRejectsNonNumericZeroNegativeAndOverflow) {
  EXPECT_DEATH(ParseServeQueueEnv("abc"), "PIT_SERVE_QUEUE");
  EXPECT_DEATH(ParseServeQueueEnv("64x"), "PIT_SERVE_QUEUE");
  EXPECT_DEATH(ParseServeQueueEnv(""), "PIT_SERVE_QUEUE");
  EXPECT_DEATH(ParseServeQueueEnv("0"), "PIT_SERVE_QUEUE");
  EXPECT_DEATH(ParseServeQueueEnv("-4"), "PIT_SERVE_QUEUE");
  EXPECT_DEATH(ParseServeQueueEnv("65537"), "PIT_SERVE_QUEUE");
}

TEST(EnvParsingTest, WatchdogUsAcceptsWideMicrosecondRange) {
  EXPECT_EQ(ParseWatchdogUsEnv("1"), 1);
  EXPECT_EQ(ParseWatchdogUsEnv("50000"), 50000);
  EXPECT_EQ(ParseWatchdogUsEnv("86400000000"), 86400000000LL);  // one day
}

TEST(EnvParsingTest, WatchdogUsRejectsNonNumericZeroNegativeAndOverflow) {
  EXPECT_DEATH(ParseWatchdogUsEnv("abc"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv("50ms"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv("2.5"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv(""), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv(" 50000"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv("0"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv("-1"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv("86400000001"), "PIT_WATCHDOG_US");
  EXPECT_DEATH(ParseWatchdogUsEnv("99999999999999999999"), "PIT_WATCHDOG_US");
}

// All five positive-integer knobs funnel through env_internal::ParsePositiveCore,
// so the strict-parse error path is exercised once per knob name above and the
// shared bound check directly here.
TEST(EnvParsingTest, SharedPositiveCoreEnforcesCallerBound) {
  EXPECT_EQ(env_internal::ParsePositiveCore("PIT_TEST_KNOB", "7", 7), 7);
  EXPECT_DEATH(env_internal::ParsePositiveCore("PIT_TEST_KNOB", "8", 7), "PIT_TEST_KNOB");
  EXPECT_DEATH(env_internal::ParsePositiveCore("PIT_TEST_KNOB", "0", 7), "PIT_TEST_KNOB");
}

TEST(EnvParsingTest, WatchdogModeAcceptsReportAndAbort) {
  EXPECT_EQ(ParseWatchdogModeEnv("report"), WatchdogMode::kReport);
  EXPECT_EQ(ParseWatchdogModeEnv("abort"), WatchdogMode::kAbort);
}

TEST(EnvParsingTest, WatchdogModeRejectsUnknownSpellings) {
  EXPECT_DEATH(ParseWatchdogModeEnv("Report"), "PIT_WATCHDOG");
  EXPECT_DEATH(ParseWatchdogModeEnv("ABORT"), "PIT_WATCHDOG");
  EXPECT_DEATH(ParseWatchdogModeEnv("panic"), "PIT_WATCHDOG");
  EXPECT_DEATH(ParseWatchdogModeEnv(""), "PIT_WATCHDOG");
  EXPECT_DEATH(ParseWatchdogModeEnv("report "), "PIT_WATCHDOG");
}

TEST(EnvParsingTest, FaultEnvAcceptsSiteRateSeedTriples) {
  {
    const FaultInjectionConfig config = ParseFaultEnv("batch_pack:0.5:7");
    EXPECT_TRUE(config.enabled);
    EXPECT_TRUE(config.site_enabled[static_cast<int>(FaultSite::kBatchPack)]);
    EXPECT_FALSE(config.site_enabled[static_cast<int>(FaultSite::kPlanCompile)]);
    EXPECT_DOUBLE_EQ(config.rate, 0.5);
    EXPECT_EQ(config.seed, 7u);
    EXPECT_FALSE(config.fail_retries);  // not spellable from the environment
  }
  {
    // "all" spells the failure sites only: stall is a delay fault and must
    // be opted into by name, never ride along with a failure sweep.
    const FaultInjectionConfig config = ParseFaultEnv("all:1.0:0");
    for (int site = 0; site < kNumFaultSites; ++site) {
      EXPECT_EQ(config.site_enabled[site], static_cast<FaultSite>(site) != FaultSite::kStall);
    }
    EXPECT_DOUBLE_EQ(config.rate, 1.0);
  }
  {
    const FaultInjectionConfig config = ParseFaultEnv("stall:0.5:9");
    EXPECT_TRUE(config.enabled);
    EXPECT_TRUE(config.site_enabled[static_cast<int>(FaultSite::kStall)]);
    EXPECT_FALSE(config.site_enabled[static_cast<int>(FaultSite::kKernelDispatch)]);
    EXPECT_DOUBLE_EQ(config.rate, 0.5);
    EXPECT_EQ(config.seed, 9u);
  }
  {
    // A bare integer rate of 1 is the only integer in (0, 1].
    const FaultInjectionConfig config = ParseFaultEnv("kernel_dispatch:1:42");
    EXPECT_TRUE(config.site_enabled[static_cast<int>(FaultSite::kKernelDispatch)]);
    EXPECT_DOUBLE_EQ(config.rate, 1.0);
    EXPECT_EQ(config.seed, 42u);
  }
}

TEST(EnvParsingTest, FaultEnvRejectsBadSites) {
  EXPECT_DEATH(ParseFaultEnv("warp_scheduler:0.5:7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv(":0.5:7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("ALL:0.5:7"), "PIT_FAULT");
}

TEST(EnvParsingTest, FaultEnvRejectsRatesOutsideZeroOneRange) {
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0:7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0.0:7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:1.5:7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:-0.5:7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:rate:7"), "PIT_FAULT");
}

TEST(EnvParsingTest, FaultEnvRejectsMalformedTriples) {
  EXPECT_DEATH(ParseFaultEnv(""), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0.5"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0.5:7:9"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0.5:seed"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0.5:-7"), "PIT_FAULT");
  EXPECT_DEATH(ParseFaultEnv("batch_pack:0.5:99999999999999999999999"), "PIT_FAULT");
}

TEST(EnvParsingTest, BackendAcceptsKnownNames) {
  EXPECT_EQ(ParseBackendEnv("blocked"), ComputeBackend::kBlocked);
  EXPECT_EQ(ParseBackendEnv("reference"), ComputeBackend::kReference);
}

TEST(EnvParsingTest, BackendRejectsUnknownNames) {
  EXPECT_DEATH(ParseBackendEnv("Reference"), "PIT_BACKEND");
  EXPECT_DEATH(ParseBackendEnv("naive"), "PIT_BACKEND");
  EXPECT_DEATH(ParseBackendEnv(""), "PIT_BACKEND");
  EXPECT_DEATH(ParseBackendEnv("blocked "), "PIT_BACKEND");
}

TEST(EnvParsingTest, PlanSchedAcceptsKnownNames) {
  EXPECT_EQ(ParsePlanSchedEnv("seq"), PlanSched::kSequential);
  EXPECT_EQ(ParsePlanSchedEnv("wavefront"), PlanSched::kWavefront);
}

TEST(EnvParsingTest, PlanSchedRejectsUnknownNames) {
  EXPECT_DEATH(ParsePlanSchedEnv("Wavefront"), "PIT_PLAN_SCHED");
  EXPECT_DEATH(ParsePlanSchedEnv("sequential"), "PIT_PLAN_SCHED");
  EXPECT_DEATH(ParsePlanSchedEnv("parallel"), "PIT_PLAN_SCHED");
  EXPECT_DEATH(ParsePlanSchedEnv(""), "PIT_PLAN_SCHED");
  EXPECT_DEATH(ParsePlanSchedEnv("seq "), "PIT_PLAN_SCHED");
}

TEST(EnvParsingTest, PlanVerifyAcceptsKnownNames) {
  EXPECT_EQ(ParsePlanVerifyEnv("auto"), PlanVerifyMode::kAuto);
  EXPECT_EQ(ParsePlanVerifyEnv("on"), PlanVerifyMode::kOn);
  EXPECT_EQ(ParsePlanVerifyEnv("off"), PlanVerifyMode::kOff);
}

TEST(EnvParsingTest, PlanVerifyRejectsUnknownNames) {
  // A typo'd mode must abort, not silently skip the verification the
  // operator believes is running.
  EXPECT_DEATH(ParsePlanVerifyEnv("On"), "PIT_VERIFY_PLAN");
  EXPECT_DEATH(ParsePlanVerifyEnv("ON"), "PIT_VERIFY_PLAN");
  EXPECT_DEATH(ParsePlanVerifyEnv("1"), "PIT_VERIFY_PLAN");
  EXPECT_DEATH(ParsePlanVerifyEnv("true"), "PIT_VERIFY_PLAN");
  EXPECT_DEATH(ParsePlanVerifyEnv("always"), "PIT_VERIFY_PLAN");
  EXPECT_DEATH(ParsePlanVerifyEnv(""), "PIT_VERIFY_PLAN");
  EXPECT_DEATH(ParsePlanVerifyEnv("on "), "PIT_VERIFY_PLAN");
}

TEST(EnvParsingTest, IsaAcceptsKnownNames) {
  EXPECT_EQ(ParseIsaEnv("scalar"), IsaTier::kScalar);
  EXPECT_EQ(ParseIsaEnv("auto"), DetectedIsa());
  if (DetectedIsa() != IsaTier::kScalar) {
    // "avx2" pins the AVX2 tier wherever CPUID grants it (an avx512 machine
    // can still pin down to avx2; see the rejection test for the converse).
    EXPECT_EQ(ParseIsaEnv("avx2"), IsaTier::kAvx2);
  }
}

TEST(EnvParsingTest, IsaRejectsUnknownAndUnsupportedNames) {
  EXPECT_DEATH(ParseIsaEnv("AVX2"), "PIT_ISA");
  EXPECT_DEATH(ParseIsaEnv("avx512"), "PIT_ISA");  // not a requestable tier
  EXPECT_DEATH(ParseIsaEnv("sse"), "PIT_ISA");
  EXPECT_DEATH(ParseIsaEnv(""), "PIT_ISA");
  EXPECT_DEATH(ParseIsaEnv("avx2 "), "PIT_ISA");
  if (DetectedIsa() == IsaTier::kScalar) {
    // Requesting a SIMD tier the CPU lacks must abort, not silently fall back.
    EXPECT_DEATH(ParseIsaEnv("avx2"), "PIT_ISA");
  }
}

TEST(IsaTierTest, ScopedIsaRestoresAndNeverExceedsDetection) {
  const IsaTier before = ActiveIsa();
  {
    ScopedIsa tier(IsaTier::kScalar);
    EXPECT_EQ(ActiveIsa(), IsaTier::kScalar);
    EXPECT_FALSE(UseSimd());
  }
  EXPECT_EQ(ActiveIsa(), before);
  EXPECT_LE(static_cast<int>(ActiveIsa()), static_cast<int>(DetectedIsa()));
}

// ---- Task-capable thread pool (the wavefront scheduler's substrate) --------

// The deadlock regression this PR's pool rework is guarded by: tasks
// dispatched on the pool call ParallelFor themselves (nested submission from
// worker threads). The ctest-level 120 s timeout turns a deadlock into a
// loud failure rather than a hung job; correctness of the partial sums
// checks that every nested chunk actually ran.
TEST(ParallelTasksTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  ScopedNumThreads threads(4);
  constexpr int64_t kTasks = 16;
  constexpr int64_t kInner = 10000;
  std::vector<int64_t> sums(kTasks, 0);
  for (int round = 0; round < 8; ++round) {
    std::fill(sums.begin(), sums.end(), 0);
    ParallelTasks(kTasks, /*nested_width=*/2, [&](int64_t task) {
      // Nested data-parallel loop from inside a pool task: per-chunk partial
      // sums merged in chunk order (the determinism contract).
      const int chunks = ParallelChunkCount(kInner, 1);
      std::vector<int64_t> partial(static_cast<size_t>(chunks), 0);
      ParallelForChunks(kInner, chunks, [&](int chunk, int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          partial[static_cast<size_t>(chunk)] += i;
        }
      });
      int64_t total = 0;
      for (int64_t p : partial) {
        total += p;
      }
      sums[task] = total;
    });
    for (int64_t task = 0; task < kTasks; ++task) {
      ASSERT_EQ(sums[task], kInner * (kInner - 1) / 2) << "task " << task;
    }
  }
}

TEST(ParallelTasksTest, WidthBudgetBoundsNestedChunkCount) {
  ScopedNumThreads threads(8);
  // Outside any parallel region the chunk count is bounded by NumThreads.
  EXPECT_EQ(ParallelChunkCount(1000, 1), 8);
  std::atomic<int> max_chunks{0};
  ParallelTasks(4, /*nested_width=*/3, [&](int64_t) {
    int observed = ParallelChunkCount(1000, 1);
    int prev = max_chunks.load();
    while (observed > prev && !max_chunks.compare_exchange_weak(prev, observed)) {
    }
    EXPECT_LE(observed, 3);  // the task's intra-op share, not the whole pool
    EXPECT_TRUE(ParallelRegionActive());
  });
  EXPECT_GE(max_chunks.load(), 1);
  // Plain nested ParallelFor (no budget) still runs inline: a chunk's nested
  // loop sees a single-chunk (serial) plan.
  ParallelFor(8, 1, [&](int64_t, int64_t) {
    EXPECT_EQ(ParallelChunkCount(1000, 1), 1);
  });
}

TEST(ParallelTasksTest, SingleThreadRunsTasksInline) {
  ScopedNumThreads threads(1);
  std::vector<int> order;
  ParallelTasks(5, 4, [&](int64_t task) { order.push_back(static_cast<int>(task)); });
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);  // inline fallback is in order
  }
}

}  // namespace
}  // namespace pit
