#include <gtest/gtest.h>

#include "pit/graph/graph_cost.h"

namespace pit {
namespace {

struct Ctx {
  CostModel model{V100()};
  TileDatabase db = TileDatabase::BuildDefault(model);
};

TEST(GraphCostTest, DenseAndNullDecisionsAgree) {
  Ctx ctx;
  Rng rng(1);
  Graph g = BuildFfnGraph(1024, 1024, 4096, rng);
  GraphCostReport dense = EstimateGraphCost(g, ctx.model, ctx.db, nullptr);
  EXPECT_EQ(dense.matmuls_sparse, 0);
  EXPECT_EQ(dense.matmuls_dense, 2);
  EXPECT_GT(dense.total.Total(), 0.0);
}

TEST(GraphCostTest, PitPassLowersFfnCost) {
  Ctx ctx;
  Rng rng(2);
  Graph g = BuildFfnGraph(4096, 1024, 4096, rng);
  auto decisions = g.PitPass();
  GraphCostReport dense = EstimateGraphCost(g, ctx.model, ctx.db, nullptr);
  GraphCostReport pit = EstimateGraphCost(g, ctx.model, ctx.db, &decisions);
  EXPECT_EQ(pit.matmuls_sparse, 1);  // the ReLU-fed down-projection
  EXPECT_EQ(pit.matmuls_dense, 1);
  EXPECT_LT(pit.total.Total(), dense.total.Total());
}

TEST(GraphCostTest, ExternalRowSparsityPaysOff) {
  Ctx ctx;
  Rng rng(3);
  Graph g;
  int x = g.AddInput("padded", {8192, 1024}, /*expected_sparsity=*/0.7);
  int w = g.AddWeight("w", Tensor::Random({1024, 1024}, rng));
  g.AddMatmul("proj", x, w);
  g.PropagateSparsity();
  auto decisions = g.PitPass();
  GraphCostReport dense = EstimateGraphCost(g, ctx.model, ctx.db, nullptr);
  GraphCostReport pit = EstimateGraphCost(g, ctx.model, ctx.db, &decisions);
  EXPECT_LT(pit.total.Total(), dense.total.Total());
  EXPECT_GT(dense.total.Total() / pit.total.Total(), 1.5);
}

TEST(GraphCostTest, ElementwiseOpsArePriced) {
  Ctx ctx;
  Graph g;
  int a = g.AddInput("a", {1024, 1024});
  int b = g.AddInput("b", {1024, 1024});
  g.AddAdd("sum", a, b);
  GraphCostReport report = EstimateGraphCost(g, ctx.model, ctx.db, nullptr);
  EXPECT_GT(report.total.memory_us, 0.0);
  EXPECT_EQ(report.matmuls_dense + report.matmuls_sparse, 0);
}

}  // namespace
}  // namespace pit
