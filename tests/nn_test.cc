#include <gtest/gtest.h>

#include "pit/nn/modules.h"

namespace pit {
namespace {

TEST(LinearTest, ForwardShapeAndDeterminism) {
  Rng rng1(1), rng2(1);
  Linear l1(8, 4, rng1), l2(8, 4, rng2);
  Rng xr(2);
  Tensor x = Tensor::Random({5, 8}, xr);
  Tensor y1 = l1.Forward(x), y2 = l2.Forward(x);
  EXPECT_EQ(y1.shape(), (Shape{5, 4}));
  EXPECT_TRUE(AllClose(y1, y2));
}

TEST(LinearTest, SparseForwardMatchesDense) {
  Rng rng(3);
  Linear l(32, 16, rng);
  Tensor x = Tensor::RandomSparse({24, 32}, 0.9, rng);
  PitCompiler compiler(V100());
  EXPECT_TRUE(AllClose(l.ForwardSparse(x, compiler), l.Forward(x), 1e-3f, 1e-4f));
}

TEST(FeedForwardTest, SparseForwardMatchesDenseAndReportsSparsity) {
  Rng rng(4);
  FeedForward ffn(16, 64, rng);
  Tensor x = Tensor::Random({12, 16}, rng);
  Tensor dense = ffn.Forward(x);
  const double s = ffn.last_activation_sparsity();
  EXPECT_GT(s, 0.1);  // ReLU kills a sizeable fraction
  EXPECT_LT(s, 0.95);
  PitCompiler compiler(V100());
  EXPECT_TRUE(AllClose(ffn.ForwardSparse(x, compiler), dense, 1e-3f, 1e-4f));
}

TEST(AttentionTest, MaskedForwardDiffersFromUnmasked) {
  Rng rng(5);
  MultiHeadAttention attn(16, 4, rng);
  Tensor x = Tensor::Random({6, 16}, rng);
  Tensor full = attn.Forward(x);
  Tensor mask = Tensor::Zeros({6, 6});
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      mask.At(i, j) = 1.0f;  // causal
    }
  }
  Tensor causal = attn.Forward(x, &mask);
  EXPECT_EQ(causal.shape(), full.shape());
  EXPECT_FALSE(AllClose(causal, full));
}

TEST(AttentionTest, FullMaskEqualsNoMask) {
  Rng rng(6);
  MultiHeadAttention attn(8, 2, rng);
  Tensor x = Tensor::Random({5, 8}, rng);
  Tensor ones = Tensor::Full({5, 5}, 1.0f);
  EXPECT_TRUE(AllClose(attn.Forward(x, &ones), attn.Forward(x), 1e-4f, 1e-5f));
}

TEST(AttentionTest, CausalFirstTokenAttendsOnlySelf) {
  // With a causal mask, row 0 only sees itself: its context equals the
  // attention output where all weight is on token 0.
  Rng rng(7);
  MultiHeadAttention attn(8, 1, rng);
  Tensor x = Tensor::Random({4, 8}, rng);
  Tensor mask = Tensor::Zeros({4, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      mask.At(i, j) = 1.0f;
    }
  }
  Tensor y = attn.Forward(x, &mask);
  // Changing later tokens must not change row 0's output.
  Tensor x2 = x;
  x2.At(3, 0) += 5.0f;
  Tensor y2 = attn.Forward(x2, &mask);
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(y.At(0, j), y2.At(0, j), 1e-4f);
  }
}

// ---- MoE: the paper's central correctness claim at module level: the PIT
// execution (gather/compute/scatter) and the padded execution must equal the
// dense masked reference exactly. ----

TEST(MoETest, PitExecutionMatchesDenseReference) {
  Rng rng(8);
  MoELayer moe(16, 32, 4, rng);
  Tensor x = Tensor::Random({20, 16}, rng);
  Tensor ref = moe.ForwardDense(x);
  EXPECT_TRUE(AllClose(moe.ForwardPit(x), ref, 1e-3f, 1e-4f));
}

TEST(MoETest, PaddedExecutionMatchesDenseReference) {
  Rng rng(9);
  MoELayer moe(16, 32, 4, rng);
  Tensor x = Tensor::Random({20, 16}, rng);
  EXPECT_TRUE(AllClose(moe.ForwardPadded(x), moe.ForwardDense(x), 1e-3f, 1e-4f));
}

TEST(MoETest, RoutingCoversAllTokens) {
  Rng rng(10);
  MoELayer moe(8, 16, 4, rng);
  Tensor x = Tensor::Random({30, 8}, rng);
  auto routing = moe.Route(x);
  ASSERT_EQ(routing.size(), 30u);
  for (int e : routing) {
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 4);
  }
}

TEST(MoETest, SingleExpertDegeneratesToFfn) {
  Rng rng(11);
  MoELayer moe(8, 16, 1, rng);
  Tensor x = Tensor::Random({10, 8}, rng);
  Tensor pit = moe.ForwardPit(x);
  Tensor dense = moe.ForwardDense(x);
  EXPECT_TRUE(AllClose(pit, dense, 1e-4f, 1e-5f));
  EXPECT_GT(pit.CountNonZero(), 0);
}

TEST(EncoderLayerTest, SparseForwardMatchesDense) {
  Rng rng(12);
  TransformerEncoderLayer layer(16, 4, 64, rng);
  Tensor x = Tensor::Random({10, 16}, rng);
  Tensor dense = layer.Forward(x);
  PitCompiler compiler(V100());
  Tensor sparse = layer.ForwardSparse(x, compiler);
  EXPECT_TRUE(AllClose(sparse, dense, 1e-3f, 1e-4f));
}

TEST(EncoderLayerTest, AttnMaskPropagates) {
  Rng rng(13);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  Tensor x = Tensor::Random({6, 8}, rng);
  Tensor mask = Tensor::Full({6, 6}, 1.0f);
  mask.At(0, 5) = 0.0f;
  mask.At(5, 0) = 0.0f;
  EXPECT_FALSE(AllClose(layer.Forward(x, &mask), layer.Forward(x)));
}

}  // namespace
}  // namespace pit
