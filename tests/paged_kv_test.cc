#include <gtest/gtest.h>

#include <cmath>

#include "pit/runtime/paged_kv.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(PagedKvTest, GatherMatchesAppendedTokens) {
  PagedKvCache cache(/*page_size=*/4, /*hidden=*/8);
  Rng rng(1);
  const int seq = cache.AddSequence();
  std::vector<Tensor> tokens;
  for (int i = 0; i < 11; ++i) {  // spans 3 pages with a ragged tail
    tokens.push_back(Tensor::Random({8}, rng));
    cache.AppendToken(seq, tokens.back());
  }
  EXPECT_EQ(cache.SequenceLength(seq), 11);
  Tensor gathered = cache.GatherSequence(seq);
  ASSERT_EQ(gathered.shape(), (Shape{11, 8}));
  for (int i = 0; i < 11; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(gathered.At(i, j), tokens[static_cast<size_t>(i)][j]);
    }
  }
}

TEST(PagedKvTest, PagesAllocatedOnDemand) {
  PagedKvCache cache(4, 2);
  const int seq = cache.AddSequence();
  Tensor t = Tensor::Full({2}, 1.0f);
  EXPECT_EQ(cache.num_pages_allocated(), 0);
  cache.AppendToken(seq, t);
  EXPECT_EQ(cache.num_pages_allocated(), 1);
  for (int i = 0; i < 3; ++i) {
    cache.AppendToken(seq, t);
  }
  EXPECT_EQ(cache.num_pages_allocated(), 1);  // page exactly full
  cache.AppendToken(seq, t);
  EXPECT_EQ(cache.num_pages_allocated(), 2);
}

TEST(PagedKvTest, FreedPagesAreReused) {
  PagedKvCache cache(2, 2);
  Tensor t = Tensor::Full({2}, 1.0f);
  const int a = cache.AddSequence();
  for (int i = 0; i < 6; ++i) {
    cache.AppendToken(a, t);
  }
  EXPECT_EQ(cache.num_pages_allocated(), 3);
  cache.FreeSequence(a);
  EXPECT_EQ(cache.num_pages_free(), 3);
  const int b = cache.AddSequence();
  for (int i = 0; i < 4; ++i) {
    cache.AppendToken(b, t);
  }
  EXPECT_EQ(cache.num_pages_allocated(), 3);  // reused, no growth
  EXPECT_EQ(cache.num_pages_free(), 1);
}

TEST(PagedKvTest, MemoryBeatsPaddedPreallocation) {
  // Ragged sequences: padded preallocation pays max_len for everyone.
  PagedKvCache cache(16, 64);
  Rng rng(2);
  const int64_t lens[] = {10, 100, 500, 37, 250};
  for (int64_t len : lens) {
    const int seq = cache.AddSequence();
    for (int64_t i = 0; i < len; ++i) {
      Tensor t = Tensor::Random({64}, rng);
      cache.AppendToken(seq, t);
    }
  }
  const int64_t padded = PagedKvCache::PaddedBytes(5, 500, 64);
  EXPECT_LT(cache.AllocatedBytes(), padded / 2);
}

TEST(PagedKvTest, ReadTokenBoundsChecked) {
  PagedKvCache cache(4, 2);
  const int seq = cache.AddSequence();
  Tensor t = Tensor::Full({2}, 2.0f);
  cache.AppendToken(seq, t);
  float out[2];
  cache.ReadToken(seq, 0, out);
  EXPECT_EQ(out[0], 2.0f);
  EXPECT_DEATH(cache.ReadToken(seq, 1, out), "check failed");
}

TEST(PagedKvTest, AppendToFreedSequenceAborts) {
  PagedKvCache cache(4, 2);
  const int seq = cache.AddSequence();
  Tensor t = Tensor::Full({2}, 1.0f);
  cache.AppendToken(seq, t);
  cache.FreeSequence(seq);
  EXPECT_DEATH(cache.AppendToken(seq, t), "freed");
}

TEST(PagedAttentionTest, MatchesContiguousAttention) {
  // Paged K/V gathered on demand must equal attention over contiguous K/V.
  PagedKvCache keys(4, 16), values(4, 16);
  Rng rng(3);
  const int seq_k = keys.AddSequence();
  const int seq_v = values.AddSequence();
  const int64_t len = 13;
  Tensor k({len, 16}), v({len, 16});
  for (int64_t i = 0; i < len; ++i) {
    Tensor kt = Tensor::Random({16}, rng);
    Tensor vt = Tensor::Random({16}, rng);
    keys.AppendToken(seq_k, kt);
    values.AppendToken(seq_v, vt);
    for (int64_t j = 0; j < 16; ++j) {
      k.At(i, j) = kt[j];
      v.At(i, j) = vt[j];
    }
  }
  Tensor q = Tensor::Random({16}, rng);
  Tensor paged = PagedAttendOne(keys, values, seq_k, q);

  // Contiguous reference.
  const float scale = 1.0f / std::sqrt(16.0f);
  Tensor scores({1, len});
  for (int64_t t = 0; t < len; ++t) {
    float acc = 0.0f;
    for (int64_t j = 0; j < 16; ++j) {
      acc += q[j] * k.At(t, j);
    }
    scores.At(0, t) = acc * scale;
  }
  Tensor probs = Softmax(scores);
  Tensor ref({16});
  for (int64_t t = 0; t < len; ++t) {
    for (int64_t j = 0; j < 16; ++j) {
      ref[j] += probs.At(0, t) * v.At(t, j);
    }
  }
  EXPECT_TRUE(AllClose(paged, ref, 1e-4f, 1e-5f));
}

}  // namespace
}  // namespace pit
