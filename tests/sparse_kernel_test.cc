#include <gtest/gtest.h>

#include <tuple>

#include "pit/core/sparse_kernel.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/moe_routing.h"

namespace pit {
namespace {

// ---- Property sweep: every PIT execution path must equal the dense
// reference for arbitrary sparsity patterns, shapes and granularities. ----

struct Case {
  int64_t m, k, n;
  double sparsity;
  int64_t gm, gn;  // sparsity granularity (1,1 = element-wise)
};

class PitKernelCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(PitKernelCorrectness, RowGatherMatchesDense) {
  const Case& c = GetParam();
  Rng rng(c.m * 1000003 + c.k);
  Tensor a = (c.gm == 1 && c.gn == 1)
                 ? Tensor::RandomSparse({c.m, c.k}, c.sparsity, rng)
                 : Tensor::RandomBlockSparse(c.m, c.k, c.gm, c.gn, c.sparsity, rng);
  Tensor b = Tensor::Random({c.k, c.n}, rng);
  Tensor ref = MatMul(a, b);
  EXPECT_TRUE(AllClose(PitRowGatherMatmul(a, b), ref, 1e-3f, 1e-4f));
}

TEST_P(PitKernelCorrectness, KGatherMatchesDense) {
  const Case& c = GetParam();
  Rng rng(c.m * 7 + c.n * 31);
  Tensor a = (c.gm == 1 && c.gn == 1)
                 ? Tensor::RandomSparse({c.m, c.k}, c.sparsity, rng)
                 : Tensor::RandomBlockSparse(c.m, c.k, c.gm, c.gn, c.sparsity, rng);
  Tensor b = Tensor::Random({c.k, c.n}, rng);
  Tensor ref = MatMul(a, b);
  for (int64_t block_m : {8, 16, 32}) {
    EXPECT_TRUE(AllClose(PitKGatherMatmul(a, b, block_m, SparsityDetector(block_m)), ref, 1e-3f,
                         1e-4f))
        << "block_m=" << block_m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PitKernelCorrectness,
    ::testing::Values(Case{32, 32, 16, 0.5, 1, 1}, Case{32, 32, 16, 0.9, 1, 1},
                      Case{64, 48, 24, 0.99, 1, 1}, Case{48, 64, 32, 0.0, 1, 1},
                      Case{48, 64, 32, 1.0, 1, 1}, Case{64, 64, 16, 0.9, 8, 1},
                      Case{64, 64, 16, 0.9, 1, 8}, Case{64, 64, 16, 0.8, 16, 16},
                      Case{96, 96, 8, 0.95, 32, 1}, Case{33, 47, 9, 0.7, 1, 1}));

// ---- general 2-D micro-tile kernel ------------------------------------------

struct MicroCase {
  int64_t mr, mc;
  double sparsity;
};

class MicroTileKernel : public ::testing::TestWithParam<MicroCase> {};

TEST_P(MicroTileKernel, MatchesDenseForAnyMicroShape) {
  const MicroCase& c = GetParam();
  Rng rng(c.mr * 101 + c.mc * 13);
  Tensor a = Tensor::RandomSparse({50, 46}, c.sparsity, rng);  // ragged vs micro
  Tensor b = Tensor::Random({46, 18}, rng);
  Tensor ref = MatMul(a, b);
  EXPECT_TRUE(AllClose(PitMicroTileMatmul(a, b, MicroTileShape{c.mr, c.mc}), ref, 1e-3f, 1e-4f))
      << "micro (" << c.mr << "," << c.mc << ") sparsity " << c.sparsity;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MicroTileKernel,
                         ::testing::Values(MicroCase{1, 1, 0.9}, MicroCase{2, 4, 0.8},
                                           MicroCase{8, 8, 0.95}, MicroCase{4, 1, 0.5},
                                           MicroCase{1, 8, 0.99}, MicroCase{16, 4, 0.0},
                                           MicroCase{7, 3, 0.7}, MicroCase{50, 46, 0.9}));

TEST(PitKernelTest, MicroTileKernelOrderInvariant) {
  Rng rng(21);
  Tensor a = Tensor::RandomSparse({32, 32}, 0.85, rng);
  Tensor b = Tensor::Random({32, 12}, rng);
  Tensor r1 = PitMicroTileMatmul(a, b, MicroTileShape{4, 4}, SparsityDetector(1));
  Tensor r2 = PitMicroTileMatmul(a, b, MicroTileShape{4, 4}, SparsityDetector(777));
  EXPECT_TRUE(AllClose(r1, r2, 1e-4f, 1e-5f));
}

TEST(PitKernelTest, MicroTileKernelSpecializesToKGather) {
  Rng rng(22);
  Tensor a = Tensor::RandomSparse({32, 40}, 0.9, rng);
  Tensor b = Tensor::Random({40, 8}, rng);
  Tensor via_micro = PitMicroTileMatmul(a, b, MicroTileShape{16, 1});
  Tensor via_kgather = PitKGatherMatmul(a, b, 16);
  EXPECT_TRUE(AllClose(via_micro, via_kgather, 1e-4f, 1e-5f));
}

TEST(PitKernelTest, DualKGatherMatchesDenseWhenBothSparse) {
  Rng rng(9);
  for (double s : {0.5, 0.9, 0.99}) {
    Tensor a = Tensor::RandomSparse({24, 40}, s, rng);
    Tensor b = Tensor::RandomSparse({40, 16}, s, rng);
    Tensor ref = MatMul(a, b);
    EXPECT_TRUE(AllClose(PitDualKGatherMatmul(a, b), ref, 1e-3f, 1e-4f)) << "sparsity " << s;
  }
}

TEST(PitKernelTest, DualKGatherAllZeroAIsZero) {
  Rng rng(10);
  Tensor a = Tensor::Zeros({8, 8});
  Tensor b = Tensor::Random({8, 8}, rng);
  Tensor c = PitDualKGatherMatmul(a, b);
  EXPECT_EQ(c.CountNonZero(), 0);
}

// Permutation invariance end-to-end: different detector schedules (different
// gather orders) give bit-identical results is too strong for float, but
// results must agree within accumulation tolerance.
TEST(PitKernelTest, ResultsAgreeAcrossDetectorSchedules) {
  Rng rng(11);
  Tensor a = Tensor::RandomSparse({48, 48}, 0.9, rng);
  Tensor b = Tensor::Random({48, 24}, rng);
  Tensor r1 = PitRowGatherMatmul(a, b, SparsityDetector(1));
  Tensor r2 = PitRowGatherMatmul(a, b, SparsityDetector(42));
  EXPECT_TRUE(AllClose(r1, r2, 1e-4f, 1e-5f));
  Tensor k1 = PitKGatherMatmul(a, b, 16, SparsityDetector(1));
  Tensor k2 = PitKGatherMatmul(a, b, 16, SparsityDetector(42));
  EXPECT_TRUE(AllClose(k1, k2, 1e-3f, 1e-4f));
}

// ---- MoE kernel -------------------------------------------------------------

TEST(PitMoETest, MatchesPerTokenReference) {
  Rng rng(12);
  const int64_t tokens = 40, h = 16, f = 24;
  const int experts = 4;
  Tensor x = Tensor::Random({tokens, h}, rng);
  std::vector<Tensor> weights;
  for (int e = 0; e < experts; ++e) {
    weights.push_back(Tensor::Random({h, f}, rng));
  }
  MoeRoutingConfig config;
  config.num_experts = experts;
  std::vector<int> routing = RouteTokens(tokens, config, rng);
  Tensor out = PitMoEMatmul(x, weights, routing);
  // Reference: each token through its own expert.
  for (int64_t t = 0; t < tokens; ++t) {
    Tensor row({1, h});
    for (int64_t j = 0; j < h; ++j) {
      row.At(0, j) = x.At(t, j);
    }
    Tensor y = MatMul(row, weights[static_cast<size_t>(routing[static_cast<size_t>(t)])]);
    for (int64_t j = 0; j < f; ++j) {
      EXPECT_NEAR(out.At(t, j), y.At(0, j), 1e-4f);
    }
  }
}

TEST(PitMoETest, EmptyExpertHandled) {
  Rng rng(13);
  Tensor x = Tensor::Random({4, 8}, rng);
  std::vector<Tensor> weights = {Tensor::Random({8, 8}, rng), Tensor::Random({8, 8}, rng)};
  std::vector<int> routing = {0, 0, 0, 0};  // expert 1 idle
  Tensor out = PitMoEMatmul(x, weights, routing);
  Tensor ref = MatMul(x, weights[0]);
  EXPECT_TRUE(AllClose(out, ref, 1e-4f, 1e-5f));
}

// ---- Planner ---------------------------------------------------------------

TEST(PlanTest, CostDecreasesWithSparsity) {
  CostModel model(V100());
  const TileShape tile{32, 32, 64};
  const PitRule rule = MakeRuleForSparseA(tile, MatmulAxis::kK, Layout::kRowMajor);
  double prev = 1e30;
  for (double s : {0.5, 0.9, 0.99, 0.999}) {
    AnalyticPattern p(4096, 4096, 32, 1, s);
    const double cost = PlanSparseMatmul(model, rule, 4096, 4096, 4096, p).cost.Total();
    EXPECT_LT(cost, prev) << "sparsity " << s;
    prev = cost;
  }
}

TEST(PlanTest, RowGatherPlanCountsRowSlices) {
  CostModel model(V100());
  const TileShape tile{32, 32, 64};
  const PitRule rule = MakeRuleForSparseA(tile, MatmulAxis::kM, Layout::kRowMajor);
  // Whole-row granularity sparsity: 10% of rows live, so 10% of the
  // [1, tile.k] row slices are nonzero: 0.1 * 1024 rows * (512/32) k-blocks.
  AnalyticPattern p(1024, 512, 1, 512, 0.9);
  PitMatmulPlan plan = PlanSparseMatmul(model, rule, 1024, 512, 512, p);
  EXPECT_NEAR(static_cast<double>(plan.num_micro_tiles), 0.1 * 1024 * 16, 32.0);
  EXPECT_NEAR(plan.covered_fraction, 0.1, 0.01);
}

TEST(PlanTest, SReadOverheadRaisesCost) {
  CostModel model(V100());
  const PitRule rule = MakeRuleForSparseA({32, 32, 64}, MatmulAxis::kK, Layout::kRowMajor);
  AnalyticPattern p(2048, 2048, 32, 1, 0.9);
  PlanOptions cheap, costly;
  cheap.sread_overhead = 0.0;
  cheap.include_index_build = false;
  costly.sread_overhead = 0.5;
  costly.include_index_build = false;
  EXPECT_LT(PlanSparseMatmul(model, rule, 2048, 2048, 2048, p, cheap).cost.Total(),
            PlanSparseMatmul(model, rule, 2048, 2048, 2048, p, costly).cost.Total());
}

TEST(PlanTest, IndexBuildChargedWhenRequested) {
  CostModel model(V100());
  const PitRule rule = MakeRuleForSparseA({32, 32, 64}, MatmulAxis::kK, Layout::kRowMajor);
  AnalyticPattern p(2048, 2048, 32, 1, 0.9);
  PlanOptions with, without;
  with.include_index_build = true;
  without.include_index_build = false;
  EXPECT_GT(PlanSparseMatmul(model, rule, 2048, 2048, 2048, p, with).cost.index_us, 0.0);
  EXPECT_EQ(PlanSparseMatmul(model, rule, 2048, 2048, 2048, p, without).cost.index_us, 0.0);
}

// ---- Rule derivation (§3.2) -------------------------------------------------

TEST(RuleTest, MicroTileShapePerAxisAndLayout) {
  bool flip = false;
  // m axis, row-major A: [1, tile.k], no flip.
  MicroTileShape m1 = DeriveMicroTileForA({16, 32, 128}, MatmulAxis::kM, Layout::kRowMajor, &flip);
  EXPECT_EQ(m1, (MicroTileShape{1, 32}));
  EXPECT_FALSE(flip);
  // m axis, col-major A: flip needed.
  DeriveMicroTileForA({16, 32, 128}, MatmulAxis::kM, Layout::kColMajor, &flip);
  EXPECT_TRUE(flip);
  // k axis, row-major A: [tile.m, 1], flip needed (contiguous on k).
  MicroTileShape k1 = DeriveMicroTileForA({16, 32, 128}, MatmulAxis::kK, Layout::kRowMajor, &flip);
  EXPECT_EQ(k1, (MicroTileShape{16, 1}));
  EXPECT_TRUE(flip);
  // k axis, col-major A: no flip.
  DeriveMicroTileForA({16, 32, 128}, MatmulAxis::kK, Layout::kColMajor, &flip);
  EXPECT_FALSE(flip);
}

TEST(RuleTest, ToStringIsInformative) {
  PitRule rule = MakeRuleForSparseA({32, 64, 32}, MatmulAxis::kK, Layout::kColMajor);
  const std::string s = rule.ToString();
  EXPECT_NE(s.find("axis=k"), std::string::npos);
  EXPECT_NE(s.find("(32,1)"), std::string::npos);
}

}  // namespace
}  // namespace pit
