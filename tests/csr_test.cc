#include <gtest/gtest.h>

#include "pit/sparse/csr.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(CsrTest, RoundTripPreservesValues) {
  Rng rng(1);
  for (double s : {0.0, 0.5, 0.95, 1.0}) {
    Tensor dense = Tensor::RandomSparse({17, 23}, s, rng);
    CsrMatrix csr = CsrMatrix::FromDense(dense);
    EXPECT_TRUE(AllClose(csr.ToDense(), dense)) << "sparsity " << s;
    EXPECT_EQ(csr.nnz(), dense.CountNonZero());
  }
}

TEST(CsrTest, RowPtrInvariants) {
  Rng rng(2);
  Tensor dense = Tensor::RandomSparse({10, 10}, 0.8, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  ASSERT_EQ(csr.row_ptr.size(), 11u);
  EXPECT_EQ(csr.row_ptr.front(), 0);
  EXPECT_EQ(csr.row_ptr.back(), csr.nnz());
  for (size_t i = 1; i < csr.row_ptr.size(); ++i) {
    EXPECT_LE(csr.row_ptr[i - 1], csr.row_ptr[i]);
  }
}

TEST(CsrTest, SpMMMatchesDense) {
  Rng rng(3);
  Tensor a = Tensor::RandomSparse({24, 32}, 0.9, rng);
  Tensor b = Tensor::Random({32, 12}, rng);
  EXPECT_TRUE(AllClose(CsrMatrix::FromDense(a).SpMM(b), MatMul(a, b), 1e-3f, 1e-4f));
}

TEST(BsrTest, RoundTripPreservesValues) {
  Rng rng(4);
  Tensor dense = Tensor::RandomBlockSparse(32, 64, 8, 16, 0.7, rng);
  BsrMatrix bsr = BsrMatrix::FromDense(dense, 8, 16);
  EXPECT_TRUE(AllClose(bsr.ToDense(), dense));
}

TEST(BsrTest, RoundTripRaggedShape) {
  Rng rng(5);
  Tensor dense = Tensor::RandomSparse({18, 21}, 0.6, rng);
  BsrMatrix bsr = BsrMatrix::FromDense(dense, 8, 8);
  EXPECT_TRUE(AllClose(bsr.ToDense(), dense));
}

TEST(BsrTest, BlockCountMatchesCoverage) {
  Rng rng(6);
  Tensor dense = Tensor::RandomBlockSparse(64, 64, 16, 16, 0.5, rng);
  BsrMatrix bsr = BsrMatrix::FromDense(dense, 16, 16);
  // Every stored block must contain at least one nonzero in the source.
  EXPECT_EQ(bsr.num_blocks() * 16 * 16,
            static_cast<int64_t>(bsr.values.size()));
  int64_t live_blocks = 0;
  for (int64_t br = 0; br < 4; ++br) {
    for (int64_t bc = 0; bc < 4; ++bc) {
      bool nz = false;
      for (int64_t i = 0; i < 16 && !nz; ++i) {
        for (int64_t j = 0; j < 16; ++j) {
          if (dense.At(br * 16 + i, bc * 16 + j) != 0.0f) {
            nz = true;
            break;
          }
        }
      }
      live_blocks += nz ? 1 : 0;
    }
  }
  EXPECT_EQ(bsr.num_blocks(), live_blocks);
}

TEST(BsrTest, SpMMMatchesDense) {
  Rng rng(7);
  Tensor a = Tensor::RandomBlockSparse(32, 48, 16, 16, 0.6, rng);
  Tensor b = Tensor::Random({48, 20}, rng);
  EXPECT_TRUE(AllClose(BsrMatrix::FromDense(a, 16, 16).SpMM(b), MatMul(a, b), 1e-3f, 1e-4f));
}

TEST(BsrTest, FineSparsityCoversWholeBlocks) {
  // A single nonzero element forces a whole 32x32 block: the waste the paper
  // attributes to OpenAI block sparse on fine-grained patterns.
  Tensor dense = Tensor::Zeros({64, 64});
  dense.At(5, 40) = 1.0f;
  BsrMatrix bsr = BsrMatrix::FromDense(dense, 32, 32);
  EXPECT_EQ(bsr.num_blocks(), 1);
  EXPECT_EQ(static_cast<int64_t>(bsr.values.size()), 32 * 32);
}

}  // namespace
}  // namespace pit
