#include <gtest/gtest.h>

#include "pit/core/batched_kernel.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

struct BatchCase {
  int64_t b, m, k, n;
  double sparsity;
};

class BatchedKernel : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchedKernel, PerBatchRowGatherMatchesDense) {
  const BatchCase& c = GetParam();
  Rng rng(c.b * 31 + c.m);
  Tensor a = Tensor::RandomSparse({c.b, c.m, c.k}, c.sparsity, rng);
  Tensor b = Tensor::Random({c.b, c.k, c.n}, rng);
  EXPECT_TRUE(AllClose(PitBatchRowGatherMatmul(a, b), BatchMatMul(a, b), 1e-3f, 1e-4f));
}

TEST_P(BatchedKernel, PerBatchKGatherMatchesDense) {
  const BatchCase& c = GetParam();
  Rng rng(c.b * 37 + c.n);
  Tensor a = Tensor::RandomSparse({c.b, c.m, c.k}, c.sparsity, rng);
  Tensor b = Tensor::Random({c.b, c.k, c.n}, rng);
  EXPECT_TRUE(AllClose(PitBatchKGatherMatmul(a, b, 8), BatchMatMul(a, b), 1e-3f, 1e-4f));
}

TEST_P(BatchedKernel, MultiAxisSharedBMatchesDense) {
  const BatchCase& c = GetParam();
  Rng rng(c.b * 41 + c.k);
  Tensor a = Tensor::RandomSparse({c.b, c.m, c.k}, c.sparsity, rng);
  Tensor shared = Tensor::Random({c.k, c.n}, rng);
  // Reference: broadcast-B batched matmul.
  Tensor b({c.b, c.k, c.n});
  for (int64_t s = 0; s < c.b; ++s) {
    std::copy(shared.data(), shared.data() + c.k * c.n, b.data() + s * c.k * c.n);
  }
  EXPECT_TRUE(
      AllClose(PitMultiAxisRowGatherMatmul(a, shared), BatchMatMul(a, b), 1e-3f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchedKernel,
                         ::testing::Values(BatchCase{2, 16, 16, 8, 0.5},
                                           BatchCase{4, 24, 16, 8, 0.9},
                                           BatchCase{3, 8, 32, 16, 0.99},
                                           BatchCase{1, 16, 16, 16, 0.0},
                                           BatchCase{2, 16, 16, 8, 1.0},
                                           BatchCase{5, 7, 9, 11, 0.7}));

TEST(BatchedKernelTest, BroadcastDetection) {
  Rng rng(1);
  Tensor shared = Tensor::Random({8, 4}, rng);
  Tensor b({3, 8, 4});
  for (int64_t s = 0; s < 3; ++s) {
    std::copy(shared.data(), shared.data() + 32, b.data() + s * 32);
  }
  EXPECT_TRUE(BatchBroadcastable(b));
  b.At(2, 5, 1) += 0.5f;
  EXPECT_FALSE(BatchBroadcastable(b));
}

TEST(BatchedKernelTest, MultiAxisBeatsPerBatchOnRaggedLoads) {
  // The point of the (b,m) rule: ragged per-batch row counts quantize badly
  // when each batch runs its own waves; flattening packs them. Verified at
  // the cost-model level.
  CostModel model(V100());
  const TileShape tile{64, 64, 64};
  const double tile_cost = model.MatmulTileCost(tile);
  // 16 batches with 10 live rows each: per-batch ceil(10/64)=1 row tile * 64
  // n-tiles * 64 k-tiles, each batch its own launch+waves.
  double per_batch = 0.0;
  for (int i = 0; i < 16; ++i) {
    per_batch += model.WaveLatency(1 * 64 * 64, tile_cost) + model.device().launch_overhead_us;
  }
  // Flattened: 160 live rows -> ceil(160/64)=3 row tiles, one launch.
  const double flattened =
      model.WaveLatency(3 * 64 * 64, tile_cost) + model.device().launch_overhead_us;
  EXPECT_LT(flattened, per_batch);
  EXPECT_GT(per_batch / flattened, 2.0);
}

TEST(BatchedKernelTest, AllZeroBatchSliceYieldsZeroSlice) {
  Rng rng(2);
  Tensor a = Tensor::RandomSparse({2, 8, 8}, 0.5, rng);
  for (int64_t i = 0; i < 64; ++i) {
    a[i] = 0.0f;  // zero out batch 0 entirely
  }
  Tensor b = Tensor::Random({2, 8, 8}, rng);
  Tensor c = PitBatchRowGatherMatmul(a, b);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(c[i], 0.0f);
  }
  EXPECT_GT(c.CountNonZero(), 0);  // batch 1 produced output
}

}  // namespace
}  // namespace pit
