// Failure injection: the library's contract is fail-fast on misuse. Every
// public entry point must abort with a diagnostic (never corrupt or return
// garbage) when handed inconsistent arguments.
#include <gtest/gtest.h>

#include <cmath>

#include "pit/core/compiler.h"
#include "pit/core/sread_swrite.h"
#include "pit/expr/einsum.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/sparse/coverage.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(FailureInjectionTest, MatmulShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "check failed");
}

TEST(FailureInjectionTest, ReshapeElementMismatchAborts) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape element count mismatch");
}

TEST(FailureInjectionTest, SReadRowsOutOfRangeAborts) {
  Tensor t = Tensor::Zeros({4, 4});
  const std::vector<int64_t> bad = {5};
  EXPECT_DEATH(SReadRows(t, bad), "check failed");
}

TEST(FailureInjectionTest, SWriteShapeMismatchAborts) {
  Tensor packed = Tensor::Zeros({2, 3});
  Tensor dst = Tensor::Zeros({4, 4});  // cols differ
  const std::vector<int64_t> rows = {0, 1};
  EXPECT_DEATH(SWriteRows(packed, rows, &dst), "check failed");
}

TEST(FailureInjectionTest, CompilerRejectsRankMismatch) {
  PitCompiler compiler(V100());
  Tensor a = Tensor::Zeros({2, 2, 2});
  Tensor b = Tensor::Zeros({2, 2});
  EXPECT_DEATH(compiler.SparseMatmul(a, b), "check failed");
}

TEST(FailureInjectionTest, MalformedEinsumAborts) {
  EXPECT_DEATH(ParseEinsum("C[m,n += A[m,k]"), "malformed einsum");
}

TEST(FailureInjectionTest, AnalyticPatternRejectsBadSparsity) {
  EXPECT_DEATH(AnalyticPattern(10, 10, 1, 1, 1.5), "check failed");
  EXPECT_DEATH(AnalyticPattern(10, 10, 0, 1, 0.5), "check failed");
}

TEST(FailureInjectionTest, UnknownModelNamesAbort) {
  EXPECT_DEATH(OptDims("7B"), "unknown OPT size");
}

TEST(FailureInjectionTest, SoftmaxMaskShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor mask = Tensor::Zeros({3, 2});
  EXPECT_DEATH(Softmax(a, &mask), "check failed");
}

TEST(FailureInjectionTest, LayerNormGammaSizeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 4});
  Tensor gamma = Tensor::Zeros({3});
  Tensor beta = Tensor::Zeros({4});
  EXPECT_DEATH(LayerNorm(a, gamma, beta), "check failed");
}

TEST(FailureInjectionTest, BlockSparseIndivisibleShapeAborts) {
  Rng rng(1);
  EXPECT_DEATH(Tensor::RandomBlockSparse(10, 10, 3, 1, 0.5, rng), "check failed");
}

// ---- ServingEngine: the error domain is split (PR 9). Construction misuse
// stays fail-fast; malformed request *data* is contained per request and
// reported as a ServeStatus — except through the legacy strict Serve()
// wrapper, which escalates any non-kOk outcome back to an abort naming the
// request. ----

TEST(FailureInjectionTest, ServingEngineNegativeOptionsAbort) {
  Rng rng(5);
  PlannedFfnStack stack(1, 8, 16, rng);
  {
    ServingEngineOptions options;
    options.num_streams = -1;
    EXPECT_DEATH(ServingEngine(stack, options), "num_streams");
  }
  {
    ServingEngineOptions options;
    options.batch_window = -2;
    EXPECT_DEATH(ServingEngine(stack, options), "batch_window");
  }
  {
    ServingEngineOptions options;
    options.max_batch_tokens = -8;
    EXPECT_DEATH(ServingEngine(stack, options), "max_batch_tokens");
  }
  {
    ServingEngineOptions options;
    options.deadline_us = -100;
    EXPECT_DEATH(ServingEngine(stack, options), "deadline_us");
  }
  {
    ServingEngineOptions options;
    options.queue_capacity = -1;
    EXPECT_DEATH(ServingEngine(stack, options), "queue_capacity");
  }
}

TEST(FailureInjectionTest, ServingEngineContainsMalformedRequestData) {
  Rng rng(6);
  PlannedTransformerStack stack(1, 16, 2, 32, rng);
  ServingEngine engine(stack, {});
  const Tensor bad_mask = Tensor::Zeros({5, 4});  // vs 4 tokens
  std::vector<ServeRequest> requests(5);
  requests[0].x = Tensor::Random({4, 16}, rng);  // the one valid request
  requests[1].x = Tensor::Random({4, 8}, rng);   // wrong hidden
  requests[2].x = Tensor::Random({4, 16}, rng);
  requests[2].attn_mask = &bad_mask;
  requests[3].x = Tensor::Random({4, 16}, rng);
  requests[3].x[7] = std::nanf("");
  requests[4].x = Tensor::Random({4, 16}, rng);
  requests[4].deadline_us = -1;
  const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
  EXPECT_EQ(outcomes[0].status, ServeStatus::kOk);
  for (size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].status, ServeStatus::kInvalidArgument) << "request " << i;
    EXPECT_TRUE(outcomes[i].output.empty());
  }
}

TEST(FailureInjectionTest, LegacyServeEscalatesContainedFailureToAbort) {
  Rng rng(7);
  PlannedFfnStack stack(1, 8, 16, rng);
  ServingEngine engine(stack, {});
  std::vector<ServeRequest> requests(1);
  requests[0].x = Tensor::Random({3, 8}, rng);
  requests[0].x[0] = std::nanf("");
  EXPECT_DEATH(engine.Serve(requests), "Serve\\(\\): request .*invalid_argument");
}

}  // namespace
}  // namespace pit
