// Failure injection: the library's contract is fail-fast on misuse. Every
// public entry point must abort with a diagnostic (never corrupt or return
// garbage) when handed inconsistent arguments.
#include <gtest/gtest.h>

#include "pit/core/compiler.h"
#include "pit/core/sread_swrite.h"
#include "pit/expr/einsum.h"
#include "pit/runtime/models.h"
#include "pit/sparse/coverage.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(FailureInjectionTest, MatmulShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "check failed");
}

TEST(FailureInjectionTest, ReshapeElementMismatchAborts) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape element count mismatch");
}

TEST(FailureInjectionTest, SReadRowsOutOfRangeAborts) {
  Tensor t = Tensor::Zeros({4, 4});
  const std::vector<int64_t> bad = {5};
  EXPECT_DEATH(SReadRows(t, bad), "check failed");
}

TEST(FailureInjectionTest, SWriteShapeMismatchAborts) {
  Tensor packed = Tensor::Zeros({2, 3});
  Tensor dst = Tensor::Zeros({4, 4});  // cols differ
  const std::vector<int64_t> rows = {0, 1};
  EXPECT_DEATH(SWriteRows(packed, rows, &dst), "check failed");
}

TEST(FailureInjectionTest, CompilerRejectsRankMismatch) {
  PitCompiler compiler(V100());
  Tensor a = Tensor::Zeros({2, 2, 2});
  Tensor b = Tensor::Zeros({2, 2});
  EXPECT_DEATH(compiler.SparseMatmul(a, b), "check failed");
}

TEST(FailureInjectionTest, MalformedEinsumAborts) {
  EXPECT_DEATH(ParseEinsum("C[m,n += A[m,k]"), "malformed einsum");
}

TEST(FailureInjectionTest, AnalyticPatternRejectsBadSparsity) {
  EXPECT_DEATH(AnalyticPattern(10, 10, 1, 1, 1.5), "check failed");
  EXPECT_DEATH(AnalyticPattern(10, 10, 0, 1, 0.5), "check failed");
}

TEST(FailureInjectionTest, UnknownModelNamesAbort) {
  EXPECT_DEATH(OptDims("7B"), "unknown OPT size");
}

TEST(FailureInjectionTest, SoftmaxMaskShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor mask = Tensor::Zeros({3, 2});
  EXPECT_DEATH(Softmax(a, &mask), "check failed");
}

TEST(FailureInjectionTest, LayerNormGammaSizeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 4});
  Tensor gamma = Tensor::Zeros({3});
  Tensor beta = Tensor::Zeros({4});
  EXPECT_DEATH(LayerNorm(a, gamma, beta), "check failed");
}

TEST(FailureInjectionTest, BlockSparseIndivisibleShapeAborts) {
  Rng rng(1);
  EXPECT_DEATH(Tensor::RandomBlockSparse(10, 10, 3, 1, 0.5, rng), "check failed");
}

}  // namespace
}  // namespace pit
