#include <gtest/gtest.h>

#include "pit/tensor/tensor.h"

namespace pit {
namespace {

TEST(TensorTest, ZerosHasCorrectShapeAndValues) {
  Tensor t = Tensor::Zeros({3, 4});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.size(), 12);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({2, 2}, 3.5f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 3.5f);
  }
}

TEST(TensorTest, At2DMatchesLinearIndex) {
  Tensor t({2, 3});
  for (int64_t i = 0; i < 6; ++i) {
    t[i] = static_cast<float>(i);
  }
  EXPECT_EQ(t.At(0, 0), 0.0f);
  EXPECT_EQ(t.At(0, 2), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.At(1, 2), 5.0f);
}

TEST(TensorTest, At3DMatchesLinearIndex) {
  Tensor t({2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) {
    t[i] = static_cast<float>(i);
  }
  EXPECT_EQ(t.At(1, 0, 1), 5.0f);
  EXPECT_EQ(t.At(0, 1, 0), 2.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 6});
  for (int64_t i = 0; i < 12; ++i) {
    t[i] = static_cast<float>(i);
  }
  Tensor r = t.Reshape({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.dim(1), 4);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(r[i], static_cast<float>(i));
  }
}

TEST(TensorTest, RandomSparseHitsTargetSparsity) {
  Rng rng(3);
  Tensor t = Tensor::RandomSparse({200, 200}, 0.9, rng);
  EXPECT_NEAR(t.SparsityRatio(), 0.9, 0.01);
}

TEST(TensorTest, RandomSparseExtremes) {
  Rng rng(4);
  EXPECT_EQ(Tensor::RandomSparse({16, 16}, 1.0, rng).CountNonZero(), 0);
  EXPECT_EQ(Tensor::RandomSparse({16, 16}, 0.0, rng).CountNonZero(), 256);
}

TEST(TensorTest, RandomBlockSparseBlocksAreAllOrNothing) {
  Rng rng(5);
  Tensor t = Tensor::RandomBlockSparse(64, 64, 8, 8, 0.5, rng);
  for (int64_t br = 0; br < 8; ++br) {
    for (int64_t bc = 0; bc < 8; ++bc) {
      int nz = 0;
      for (int64_t i = 0; i < 8; ++i) {
        for (int64_t j = 0; j < 8; ++j) {
          nz += t.At(br * 8 + i, bc * 8 + j) != 0.0f ? 1 : 0;
        }
      }
      EXPECT_TRUE(nz == 0 || nz == 64) << "block (" << br << "," << bc << ") has " << nz;
    }
  }
}

TEST(TensorTest, RandomBlockSparseSparsityNearTarget) {
  Rng rng(6);
  Tensor t = Tensor::RandomBlockSparse(512, 512, 32, 1, 0.95, rng);
  EXPECT_NEAR(t.SparsityRatio(), 0.95, 0.01);
}

TEST(TensorTest, AllCloseIdentity) {
  Rng rng(7);
  Tensor t = Tensor::Random({8, 8}, rng);
  EXPECT_TRUE(AllClose(t, t));
}

TEST(TensorTest, AllCloseDetectsDifference) {
  Tensor a = Tensor::Zeros({4});
  Tensor b = Tensor::Zeros({4});
  b[2] = 0.1f;
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.1f);
}

TEST(TensorTest, AllCloseShapeMismatchIsFalse) {
  EXPECT_FALSE(AllClose(Tensor::Zeros({2, 3}), Tensor::Zeros({3, 2})));
}

TEST(TensorTest, SparsityRatioOfDenseIsZero) {
  Rng rng(8);
  Tensor t = Tensor::Random({16, 16}, rng, 0.5f, 1.0f);
  EXPECT_EQ(t.SparsityRatio(), 0.0);
}

TEST(TensorTest, BytesAccountsFloat) {
  EXPECT_EQ(Tensor::Zeros({10, 10}).bytes(), 400);
}

TEST(TensorTest, ShapeToStringFormat) {
  EXPECT_EQ(ShapeToString({2, 3, 4}), "[2,3,4]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

}  // namespace
}  // namespace pit
