// Plan-verifier suite (PR 8).
//
// Two halves, matching the verifier's contract:
//   * Positive sweep — every OpKind, fused/in-place/PIT/masked/batched plans,
//     both replay schedulers, the randomized-graph fuzzer's generator, and
//     the serving engine's pooled plans must all verify with zero violations.
//     A false positive here would turn the compile hook into a build breaker.
//   * Corrupted-plan negative suite — each invariant class is violated once,
//     through the PlanCorruptor test seam, and the verifier must report that
//     specific class. A corruption the verifier misses is exactly the planner
//     bug that would ship as a probabilistic data race.
#include "pit/graph/plan_verifier.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/rng.h"
#include "pit/graph/execution_plan.h"
#include "pit/graph/graph.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/tensor.h"

namespace pit {
namespace {

// Every OpKind in one graph: fused MatmulBias+ReLU, an in-place elementwise
// chain, masked softmax, layernorm, scale, transpose round-trip, reshape
// aliasing into a batched matmul.
Graph BuildAllOpsGraph(Rng& rng) {
  Graph g;
  const int x = g.AddInput("x", {32, 64});
  const int m = g.AddInput("m", {32, 64});
  const int w = g.AddWeight("w", Tensor::Random({64, 64}, rng));
  const int bias = g.AddWeight("bias", Tensor::Random({64}, rng));
  const int gamma = g.AddWeight("gamma", Tensor::Random({64}, rng));
  const int beta = g.AddWeight("beta", Tensor::Random({64}, rng));
  const int mm = g.AddMatmulBias("proj", x, w, bias);
  const int act = g.AddRelu("act", mm);  // fuses into the MatmulBias step
  const int sum = g.AddAdd("sum", act, x);
  const int masked = g.AddMask("masked", sum, m);
  const int sm = g.AddSoftmax("sm", masked);
  const int ln = g.AddLayerNorm("ln", sm, gamma, beta);
  const int sc = g.AddScale("sc", ln, 0.5f);
  const int tr = g.AddTranspose("tr", sc, 0, 1);
  const int back = g.AddTranspose("back", tr, 0, 1);
  const int heads = g.AddReshape("heads", back, {2, 16, 64});
  const int keys = g.AddInput("keys", {2, 64, 16});
  g.AddBatchMatmul("scores", heads, keys);
  return g;
}

// Masked + batched multi-head attention: three parallel projection GEMMs (a
// wave of width 3), head split/merge through reshape+transpose aliases,
// broadcast-masked softmax, residual add, layernorm.
Graph BuildAttentionGraph(Rng& rng) {
  constexpr int64_t kTokens = 24;
  constexpr int64_t kHidden = 32;
  constexpr int64_t kHeads = 4;
  constexpr int64_t kDk = kHidden / kHeads;
  Graph g;
  const int x = g.AddInput("x", {kTokens, kHidden});
  const int mask = g.AddInput("mask", {kTokens, kTokens});
  const int gamma = g.AddWeight("gamma", Tensor::Random({kHidden}, rng));
  const int beta = g.AddWeight("beta", Tensor::Random({kHidden}, rng));
  auto head_split = [&](const char* name, int from) {
    const int proj =
        g.AddMatmul(name, from, g.AddWeight(std::string("w_") + name,
                                            Tensor::Random({kHidden, kHidden}, rng)));
    const int split = g.AddReshape(std::string(name) + "_h", proj, {kTokens, kHeads, kDk});
    return g.AddTranspose(std::string(name) + "_t", split, 0, 1);
  };
  const int q = head_split("q", x);
  const int k = head_split("k", x);
  const int v = head_split("v", x);
  const int kt = g.AddTranspose("kt", k, 1, 2);
  const int scores = g.AddBatchMatmul("scores", q, kt);
  const int scaled = g.AddScale("scaled", scores, 0.35f);
  const int sm = g.AddSoftmax("sm", scaled, mask);
  const int ctx = g.AddBatchMatmul("ctx", sm, v);
  const int merged = g.AddTranspose("merged", ctx, 0, 1);
  const int flat = g.AddReshape("flat", merged, {kTokens, kHidden});
  const int res = g.AddAdd("res", flat, x);
  g.AddLayerNorm("out", res, gamma, beta);
  return g;
}

// Two PIT matmuls over independent inputs: disjoint arena footprints, so
// their required total order comes only from the PIT chain, not from data.
Graph BuildIndependentPitGraph(Rng& rng, std::vector<MatmulDecision>* decisions) {
  Graph g;
  const int x1 = g.AddInput("x1", {16, 16});
  const int x2 = g.AddInput("x2", {16, 16});
  const int w1 = g.AddWeight("w1", Tensor::Random({16, 16}, rng));
  const int w2 = g.AddWeight("w2", Tensor::Random({16, 16}, rng));
  const int mm1 = g.AddMatmul("mm1", x1, w1);
  const int mm2 = g.AddMatmul("mm2", x2, w2);
  g.AddAdd("sum", mm1, mm2);
  decisions->push_back({mm1, true, 0, MatmulAxis::kM, false, "test"});
  decisions->push_back({mm2, true, 0, MatmulAxis::kM, false, "test"});
  return g;
}

PlanVerifyReport Verify(const ExecutionPlan& plan) { return VerifyPlan(plan); }

// ---- Positive sweep --------------------------------------------------------

TEST(PlanVerifierTest, AllOpsPlanHasZeroViolations) {
  Rng rng(801);
  Graph g = BuildAllOpsGraph(rng);
  const ExecutionPlan plan(g, nullptr);
  const PlanVerifyReport report = Verify(plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // The sweep must have examined real structure, not vacuously passed.
  EXPECT_GT(report.steps_checked, 0);
  EXPECT_GT(report.waves_checked, 0);
  EXPECT_GT(report.blocks_checked, 0);
  EXPECT_GT(report.oracle_pairs, 0);
  EXPECT_GT(report.oracle_edges, 0);
  EXPECT_EQ(plan.stats().num_fused, 1);  // the MatmulBias+ReLU pair collapsed
}

TEST(PlanVerifierTest, MaskedBatchedAttentionPlanHasZeroViolations) {
  Rng rng(803);
  Graph g = BuildAttentionGraph(rng);
  const ExecutionPlan plan(g, nullptr);
  const PlanVerifyReport report = Verify(plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(plan.stats().max_wavefront_width, 1);  // parallel q/k/v projections
}

TEST(PlanVerifierTest, FusedAndPitFfnPlansHaveZeroViolations) {
  Rng rng(805);
  Graph dense = BuildFfnGraph(48, 16, 64, rng);
  const ExecutionPlan dense_plan(dense, nullptr);
  EXPECT_EQ(dense_plan.stats().num_fused, 1);
  EXPECT_TRUE(Verify(dense_plan).ok()) << Verify(dense_plan).ToString();

  Graph sparse = BuildFfnGraph(48, 16, 64, rng);
  const std::vector<MatmulDecision> decisions = sparse.PitPass();
  const ExecutionPlan pit_plan(sparse, &decisions);
  EXPECT_GT(pit_plan.stats().num_pit_steps, 0);
  EXPECT_TRUE(Verify(pit_plan).ok()) << Verify(pit_plan).ToString();
}

TEST(PlanVerifierTest, IndependentPitMatmulsVerifyCleanAndTotallyOrdered) {
  Rng rng(807);
  std::vector<MatmulDecision> decisions;
  Graph g = BuildIndependentPitGraph(rng, &decisions);
  const ExecutionPlan plan(g, &decisions);
  EXPECT_EQ(plan.stats().num_pit_steps, 2);
  // The PIT chain must have serialized the data-independent matmuls.
  EXPECT_EQ(plan.stats().max_wavefront_width, 1);
  EXPECT_TRUE(Verify(plan).ok()) << Verify(plan).ToString();
}

TEST(PlanVerifierTest, BothSchedulersCompileVerifiablePlans) {
  // The wave partition is a compile artifact — PIT_PLAN_SCHED picks how waves
  // dispatch, not what the plan contains — but pin both settings anyway so a
  // future scheduler-dependent compile path cannot dodge verification.
  for (PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
    ScopedPlanSched scoped(sched);
    Rng rng(809);
    Graph g = BuildAttentionGraph(rng);
    const ExecutionPlan plan(g, nullptr);
    EXPECT_TRUE(Verify(plan).ok()) << Verify(plan).ToString();
  }
}

TEST(PlanVerifierTest, RandomizedGraphsAllVerifyClean) {
  // The plan_executor fuzzer's generator: arbitrary legal op chains with
  // shared subexpressions, aliasing reshape round-trips, and block-reuse
  // pressure. Every generated plan must satisfy every invariant.
  Rng rng(811);
  for (int trial = 0; trial < 16; ++trial) {
    const int64_t rows = 8 + static_cast<int64_t>(rng.NextBelow(3)) * 4;
    const int64_t cols = 8 + static_cast<int64_t>(rng.NextBelow(2)) * 8;
    Graph g;
    g.AddInput("x", {rows, cols});
    std::vector<int> pool{0};
    const int ops = 8 + static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < ops; ++i) {
      const int src = pool[rng.NextBelow(pool.size())];
      const Shape s = g.node(src).shape;
      // Append form: gcc 12's -Wrestrict false-fires on the operator+ chain.
      std::string name = "n";
      name += std::to_string(i);
      switch (rng.NextBelow(8)) {
        case 0: {
          Tensor w = Tensor::Random({s[1], cols}, rng, -0.3f, 0.3f);
          const int wid = g.AddWeight(name + "_w", std::move(w));
          pool.push_back(g.AddMatmul(name, src, wid));
          break;
        }
        case 1:
          pool.push_back(g.AddRelu(name, src));
          break;
        case 2: {
          int other = src;
          for (int probe = 0; probe < 4; ++probe) {
            const int cand = pool[rng.NextBelow(pool.size())];
            if (g.node(cand).shape == s) {
              other = cand;
              break;
            }
          }
          pool.push_back(g.AddAdd(name, src, other));
          break;
        }
        case 3:
          pool.push_back(g.AddScale(name, src, 0.75f));
          break;
        case 4:
          pool.push_back(g.AddSoftmax(name, src));
          break;
        case 5:
          pool.push_back(g.AddTranspose(name, src, 0, 1));
          break;
        case 6: {
          const int rs = g.AddReshape(name + "_a", src, {s[0] * s[1]});
          pool.push_back(g.AddReshape(name, rs, s));
          break;
        }
        case 7: {
          int other = src;
          for (int probe = 0; probe < 4; ++probe) {
            const int cand = pool[rng.NextBelow(pool.size())];
            if (g.node(cand).shape == s) {
              other = cand;
              break;
            }
          }
          pool.push_back(g.AddMask(name, src, other));
          break;
        }
      }
    }
    const ExecutionPlan plan(g, nullptr);
    const PlanVerifyReport report = Verify(plan);
    ASSERT_TRUE(report.ok()) << "fuzz trial " << trial << ":\n" << report.ToString();
  }
}

TEST(PlanVerifierTest, CompileHookAndPooledServingVerifyUnderForcedOn) {
  // PIT_VERIFY_PLAN=on: every plan compile and every serving-pool entry runs
  // VerifyPlanOrDie. Serving a healthy engine to completion proves the hooks
  // fire on valid plans without killing the process.
  ScopedPlanVerify on(PlanVerifyMode::kOn);
  Rng rng(813);
  PlannedFfnStack stack(2, 16, 64, rng);
  ServingEngineOptions options;
  options.num_streams = 2;
  ServingEngine engine(stack, options);
  Rng xr(814);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back({Tensor::Random({8 + 4 * (i % 3), 16}, xr), nullptr});
  }
  const std::vector<Tensor> outputs = engine.Serve(requests);
  ASSERT_EQ(outputs.size(), requests.size());
  EXPECT_GT(engine.stats().pool_contexts, 0);
}

// ---- Corrupted-plan negative suite -----------------------------------------
//
// Each test compiles a healthy plan, mutates exactly one invariant through
// the PlanCorruptor seam, and asserts the verifier reports that class. The
// corruption may knock on into further violations (a moved block also shifts
// hazards); tests assert the expected class is PRESENT, not exclusive.

TEST(PlanVerifierCorruptionTest, MergedWavesReportConcurrentHazard) {
  Rng rng(821);
  Graph g = BuildAttentionGraph(rng);
  ExecutionPlan plan(g, nullptr);
  // Collapse the partition to one wave holding every dispatched step: every
  // producer/consumer pair now claims to run concurrently.
  std::vector<int>& offsets = PlanCorruptor::wave_offsets(plan);
  offsets = {0, static_cast<int>(PlanCorruptor::wave_steps(plan).size())};
  PlanCorruptor::stats(plan).num_wavefronts = 1;
  PlanCorruptor::stats(plan).max_wavefront_width =
      static_cast<int>(PlanCorruptor::wave_steps(plan).size());
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kConcurrentHazard)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, InvertedWaveOrderReportsMissingHazardEdge) {
  Rng rng(823);
  Graph g = BuildAttentionGraph(rng);
  ExecutionPlan plan(g, nullptr);
  // Reverse the wave order (keeping each wave's membership and internal step
  // order): every dependency edge now points from a later wave to an earlier
  // one — the schedule would replay consumers before their producers.
  const std::vector<int> old_steps = PlanCorruptor::wave_steps(plan);
  const std::vector<int> old_offsets = PlanCorruptor::wave_offsets(plan);
  std::vector<int>& steps = PlanCorruptor::wave_steps(plan);
  std::vector<int>& offsets = PlanCorruptor::wave_offsets(plan);
  steps.clear();
  offsets = {0};
  for (int w = static_cast<int>(old_offsets.size()) - 2; w >= 0; --w) {
    for (int i = old_offsets[static_cast<size_t>(w)];
         i < old_offsets[static_cast<size_t>(w) + 1]; ++i) {
      steps.push_back(old_steps[static_cast<size_t>(i)]);
    }
    offsets.push_back(static_cast<int>(steps.size()));
  }
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kMissingHazardEdge)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, MisalignedOffsetReported) {
  Rng rng(825);
  Graph g = BuildAllOpsGraph(rng);
  ExecutionPlan plan(g, nullptr);
  // Nudge one dispatched step's output block off the 64-byte grid.
  for (OpCall& step : PlanCorruptor::steps(plan)) {
    if (step.kind != OpKind::kReshape && step.out.loc == ValueLoc::kArena) {
      step.out.offset += 1;
      break;
    }
  }
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kMisalignedOffset)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, OverlappingReuseReportsClobberedRead) {
  // mm1 and mm2 are independent; add reads both. Redirecting mm2's output
  // into mm1's still-live block is exactly the arena-planner bug class the
  // liveness check exists for: a block recycled while a later step must still
  // read it.
  Rng rng(827);
  Graph g;
  const int x = g.AddInput("x", {16, 16});
  const int w1 = g.AddWeight("w1", Tensor::Random({16, 16}, rng));
  const int w2 = g.AddWeight("w2", Tensor::Random({16, 16}, rng));
  const int mm1 = g.AddMatmul("mm1", x, w1);
  const int mm2 = g.AddMatmul("mm2", x, w2);
  g.AddAdd("sum", mm1, mm2);
  ExecutionPlan plan(g, nullptr);
  std::vector<OpCall>& steps = PlanCorruptor::steps(plan);
  ASSERT_EQ(steps.size(), 3u);
  const int64_t mm1_offset = steps[0].out.offset;
  ASSERT_NE(steps[1].out.offset, mm1_offset);  // healthy plan: distinct blocks
  steps[1].out.offset = mm1_offset;  // mm2 now clobbers mm1's block
  steps[2].in[1].offset = mm1_offset;  // keep the add's read of mm2 coherent
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kClobberedRead)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, ConcurrentPitStepsReportPitOrder) {
  Rng rng(829);
  std::vector<MatmulDecision> decisions;
  Graph g = BuildIndependentPitGraph(rng, &decisions);
  ExecutionPlan plan(g, &decisions);
  // Healthy partition: {mm1}, {mm2}, {add} — the PIT chain split the
  // data-independent matmuls. Merge the first two waves: no data hazard
  // between them (disjoint blocks), but the PIT total order is gone.
  std::vector<int>& offsets = PlanCorruptor::wave_offsets(plan);
  ASSERT_EQ(offsets.size(), 4u);
  offsets = {0, 2, 3};
  PlanCorruptor::stats(plan).num_wavefronts = 2;
  PlanCorruptor::stats(plan).max_wavefront_width = 2;
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kPitOrder)) << report.ToString();
  EXPECT_FALSE(report.Has(PlanViolationKind::kConcurrentHazard)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, DroppedFeedBindingReported) {
  Rng rng(831);
  Graph g = BuildAllOpsGraph(rng);
  ExecutionPlan plan(g, nullptr);
  ASSERT_FALSE(PlanCorruptor::feed_bindings(plan).empty());
  PlanCorruptor::feed_bindings(plan).pop_back();
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kFeedBinding)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, ReferenceToElidedFusedNodeReportsDanglingStorage) {
  Rng rng(833);
  Graph ffn = BuildFfnGraph(32, 16, 64, rng);  // matmul -> relu -> matmul
  int relu_id = -1;
  for (int id = 0; id < ffn.size(); ++id) {
    if (ffn.node(id).kind == OpKind::kRelu) {
      relu_id = id;
    }
  }
  ASSERT_GE(relu_id, 0);
  const int elided_matmul = ffn.node(relu_id).inputs[0];
  ExecutionPlan plan(ffn, nullptr);
  ASSERT_EQ(plan.stats().num_fused, 1);
  // Point the down-projection's read at the fused-away matmul node: no step
  // produces it, so the reference dangles — the fused value-map leak.
  std::vector<OpCall>& steps = PlanCorruptor::steps(plan);
  ASSERT_EQ(steps.size(), 2u);
  steps[1].in[0].node_id = elided_matmul;
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kDanglingStorage)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, BlockPastArenaExtentReportsOutOfBounds) {
  Rng rng(835);
  Graph g = BuildAllOpsGraph(rng);
  ExecutionPlan plan(g, nullptr);
  // Park a block at the arena's end: aligned, but its extent pokes past the
  // context arena every stream would allocate.
  for (OpCall& step : PlanCorruptor::steps(plan)) {
    if (step.kind != OpKind::kReshape && step.out.loc == ValueLoc::kArena) {
      step.out.offset = PlanCorruptor::arena_elems(plan);
      break;
    }
  }
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kArenaOutOfBounds)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, DroppedWaveStepReportsWavePartition) {
  Rng rng(837);
  Graph g = BuildAttentionGraph(rng);
  ExecutionPlan plan(g, nullptr);
  // Drop the final wave entry: one dispatched step is no longer scheduled.
  std::vector<int>& steps = PlanCorruptor::wave_steps(plan);
  std::vector<int>& offsets = PlanCorruptor::wave_offsets(plan);
  ASSERT_FALSE(steps.empty());
  steps.pop_back();
  offsets.back() -= 1;
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kWavePartition)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, FuseFlagOnElementwiseStepReportsFusedStep) {
  Rng rng(839);
  Graph g = BuildAttentionGraph(rng);
  ExecutionPlan plan(g, nullptr);
  for (OpCall& step : PlanCorruptor::steps(plan)) {
    if (step.kind == OpKind::kAdd) {
      step.fuse_relu = true;  // an epilogue only matmul steps can carry
      break;
    }
  }
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kFusedStep)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, OperandCountMismatchReportsMalformedStep) {
  Rng rng(841);
  Graph g = BuildAttentionGraph(rng);
  ExecutionPlan plan(g, nullptr);
  for (OpCall& step : PlanCorruptor::steps(plan)) {
    if (step.kind == OpKind::kLayerNorm) {
      step.num_in = 1;  // layernorm takes x, gamma, beta
      break;
    }
  }
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kMalformedStep)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, InflatedStatsReportStatsMismatch) {
  Rng rng(843);
  Graph g = BuildAllOpsGraph(rng);
  ExecutionPlan plan(g, nullptr);
  PlanCorruptor::stats(plan).num_fused += 1;
  const PlanVerifyReport report = Verify(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(PlanViolationKind::kStatsMismatch)) << report.ToString();
}

TEST(PlanVerifierCorruptionTest, EveryCleanReportHasNoViolationOfAnyClass) {
  // Guard against Has() giving vacuous positives: a clean report must carry
  // none of the classes the suite above asserts.
  Rng rng(845);
  Graph g = BuildAttentionGraph(rng);
  const ExecutionPlan plan(g, nullptr);
  const PlanVerifyReport report = Verify(plan);
  ASSERT_TRUE(report.ok()) << report.ToString();
  for (PlanViolationKind kind :
       {PlanViolationKind::kMalformedStep, PlanViolationKind::kArenaOutOfBounds,
        PlanViolationKind::kMisalignedOffset, PlanViolationKind::kWavePartition,
        PlanViolationKind::kConcurrentHazard, PlanViolationKind::kMissingHazardEdge,
        PlanViolationKind::kClobberedRead, PlanViolationKind::kDanglingStorage,
        PlanViolationKind::kFeedBinding, PlanViolationKind::kPitOrder,
        PlanViolationKind::kFusedStep, PlanViolationKind::kStatsMismatch}) {
    EXPECT_FALSE(report.Has(kind)) << PlanViolationKindName(kind);
  }
}

TEST(PlanVerifierCorruptionDeathTest, VerifyPlanOrDieAbortsWithReport) {
  Rng rng(847);
  Graph g = BuildAllOpsGraph(rng);
  ExecutionPlan plan(g, nullptr);
  for (OpCall& step : PlanCorruptor::steps(plan)) {
    if (step.kind != OpKind::kReshape && step.out.loc == ValueLoc::kArena) {
      step.out.offset += 1;
      break;
    }
  }
  EXPECT_DEATH(VerifyPlanOrDie(plan, "corrupted test plan"), "PIT_VERIFY_PLAN");
}

}  // namespace
}  // namespace pit
