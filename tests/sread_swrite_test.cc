#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include "pit/common/parallel_for.h"
#include "pit/core/sread_swrite.h"

namespace pit {
namespace {

TEST(SReadTest, GathersRowsInIndexOrder) {
  Tensor t({4, 3});
  for (int64_t i = 0; i < 12; ++i) {
    t[i] = static_cast<float>(i);
  }
  const std::vector<int64_t> rows = {2, 0};
  Tensor packed = SReadRows(t, rows);
  EXPECT_EQ(packed.shape(), (Shape{2, 3}));
  EXPECT_EQ(packed.At(0, 0), 6.0f);
  EXPECT_EQ(packed.At(1, 0), 0.0f);
}

TEST(SReadTest, GathersColsInIndexOrder) {
  Tensor t({2, 4});
  for (int64_t i = 0; i < 8; ++i) {
    t[i] = static_cast<float>(i);
  }
  const std::vector<int64_t> cols = {3, 1};
  Tensor packed = SReadCols(t, cols);
  EXPECT_EQ(packed.shape(), (Shape{2, 2}));
  EXPECT_EQ(packed.At(0, 0), 3.0f);
  EXPECT_EQ(packed.At(0, 1), 1.0f);
  EXPECT_EQ(packed.At(1, 0), 7.0f);
}

TEST(SWriteTest, RowRoundTripRestoresOriginalPositions) {
  Rng rng(1);
  Tensor t = Tensor::Random({8, 5}, rng);
  const std::vector<int64_t> rows = {6, 1, 3};
  Tensor packed = SReadRows(t, rows);
  Tensor dst = Tensor::Zeros({8, 5});
  SWriteRows(packed, rows, &dst);
  for (int64_t r : rows) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(dst.At(r, c), t.At(r, c));
    }
  }
  // Unwritten rows remain zero.
  for (int64_t c = 0; c < 5; ++c) {
    EXPECT_EQ(dst.At(0, c), 0.0f);
  }
}

TEST(SWriteTest, ColsAddAccumulates) {
  Tensor packed = Tensor::Full({2, 2}, 1.0f);
  Tensor dst = Tensor::Full({2, 4}, 10.0f);
  const std::vector<int64_t> cols = {1, 3};
  SWriteColsAdd(packed, cols, &dst);
  EXPECT_EQ(dst.At(0, 1), 11.0f);
  EXPECT_EQ(dst.At(0, 3), 11.0f);
  EXPECT_EQ(dst.At(0, 0), 10.0f);
}

TEST(MicroTileRoundTripTest, ReadThenWriteIsIdentityOnCoveredArea) {
  Rng rng(2);
  Tensor t = Tensor::RandomSparse({24, 24}, 0.6, rng);
  SparsityDetector detector(/*shuffle_seed=*/7);
  for (const MicroTileShape micro : {MicroTileShape{4, 4}, MicroTileShape{1, 8},
                                     MicroTileShape{8, 1}, MicroTileShape{3, 5}}) {
    MicroTileIndex index = detector.Detect(t, micro);
    Tensor packed = SReadMicroTiles(t, index);
    Tensor dst = Tensor::Zeros({24, 24});
    SWriteMicroTiles(packed, index, &dst);
    EXPECT_TRUE(AllClose(dst, t)) << "micro " << micro.ToString();
  }
}

TEST(MicroTileRoundTripTest, RaggedShapeRoundTrips) {
  Rng rng(3);
  Tensor t = Tensor::RandomSparse({10, 13}, 0.5, rng);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  Tensor packed = SReadMicroTiles(t, index);
  Tensor dst = Tensor::Zeros({10, 13});
  SWriteMicroTiles(packed, index, &dst);
  EXPECT_TRUE(AllClose(dst, t));
}

TEST(MicroTileRoundTripTest, PackedShapeMatchesIndex) {
  Rng rng(4);
  Tensor t = Tensor::RandomSparse({16, 16}, 0.7, rng);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{2, 8});
  Tensor packed = SReadMicroTiles(t, index);
  EXPECT_EQ(packed.dim(0), index.NumNonZero() * 2);
  EXPECT_EQ(packed.dim(1), 8);
}

// ---- Batch-axis packing fast paths (ragged batched serving) ----------------
//
// The serving engine packs mixed-length requests into arena-style staging
// tiles through SReadRowsInto / SWriteRowsFrom, so these run against raw
// caller-owned buffers wrapped in TensorViews, not owning Tensors.

// Scalar oracle for the gather: dst row (dst_row0 + i) = src row row_ids[i].
void ReferenceGather(const Tensor& src, const std::vector<int64_t>& rows,
                     std::vector<float>& dst, int64_t dst_row0, int64_t cols) {
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t c = 0; c < cols; ++c) {
      dst[static_cast<size_t>((dst_row0 + static_cast<int64_t>(i)) * cols + c)] =
          src.At(rows[i], c);
    }
  }
}

TEST(BatchPackTest, GatherIntoViewAtOffsetMatchesReference) {
  Rng rng(21);
  Tensor src = Tensor::Random({5, 3}, rng);
  std::vector<float> arena(8 * 3, -7.0f);
  const Shape dst_shape{8, 3};  // views borrow the Shape's dims: keep it alive
  TensorView dst(arena.data(), dst_shape);
  const std::vector<int64_t> rows = {4, 0, 2};
  SReadRowsInto(src, rows, dst, /*dst_row0=*/2);
  std::vector<float> want(8 * 3, -7.0f);
  ReferenceGather(src, rows, want, 2, 3);
  EXPECT_EQ(std::memcmp(arena.data(), want.data(), arena.size() * sizeof(float)), 0);
  // Rows outside [2, 5) keep the arena's prior contents.
  EXPECT_EQ(arena[0], -7.0f);
  EXPECT_EQ(arena[5 * 3], -7.0f);
}

TEST(BatchPackTest, EmptyRowSetIsANoOp) {
  Rng rng(22);
  Tensor src = Tensor::Random({4, 6}, rng);
  std::vector<float> arena(4 * 6, 3.0f);
  const Shape view_shape{4, 6};
  TensorView view(arena.data(), view_shape);
  SReadRowsInto(src, std::span<const int64_t>{}, view, 0);
  SWriteRowsFrom(src, 0, std::span<const int64_t>{}, view);
  for (float v : arena) {
    EXPECT_EQ(v, 3.0f);
  }
}

TEST(BatchPackTest, SingleRowGatherScatter) {
  Rng rng(23);
  Tensor src = Tensor::Random({3, 4}, rng);
  std::vector<float> packed(1 * 4, 0.0f);
  const std::vector<int64_t> rows = {1};
  SReadRowsInto(src, rows, TensorView(packed.data(), Shape{1, 4}), 0);
  std::vector<float> out(3 * 4, 0.0f);
  SWriteRowsFrom(ConstTensorView(packed.data(), Shape{1, 4}), 0, rows,
                 TensorView(out.data(), Shape{3, 4}));
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(out[static_cast<size_t>(1 * 4 + c)], src.At(1, c));
    EXPECT_EQ(out[static_cast<size_t>(0 * 4 + c)], 0.0f);
  }
}

TEST(BatchPackTest, FullPermutationRoundTripsBitwise) {
  Rng rng(24);
  Tensor src = Tensor::Random({16, 7}, rng);
  const std::vector<int64_t> perm = {9, 3, 15, 0, 7, 12, 1, 14, 4, 11, 6, 2, 13, 8, 10, 5};
  std::vector<float> packed(16 * 7, 0.0f);
  SReadRowsInto(src, perm, TensorView(packed.data(), Shape{16, 7}), 0);
  std::vector<float> out(16 * 7, 0.0f);
  SWriteRowsFrom(ConstTensorView(packed.data(), Shape{16, 7}), 0, perm,
                 TensorView(out.data(), Shape{16, 7}));
  EXPECT_EQ(std::memcmp(out.data(), src.data(), out.size() * sizeof(float)), 0);
}

// Mixed-length requests concatenated at ragged offsets into one padded tile,
// then scattered back — exactly the serving engine's packing protocol,
// including the identity-prefix row ids that exercise the consecutive-run
// memcpy coalescing.
TEST(BatchPackTest, RaggedTailsConcatenateAndScatterBack) {
  Rng rng(25);
  const std::vector<int64_t> lens = {5, 1, 9, 3};
  constexpr int64_t kCols = 6;
  constexpr int64_t kPadded = 32;  // 18 real rows + padding tail
  std::vector<Tensor> requests;
  std::vector<int64_t> iota;
  for (int64_t len : lens) {
    requests.push_back(Tensor::Random({len, kCols}, rng));
  }
  for (int64_t i = 0; i < 16; ++i) {
    iota.push_back(i);
  }
  std::vector<float> arena(kPadded * kCols, 0.0f);
  const Shape packed_shape{kPadded, kCols};
  TensorView packed(arena.data(), packed_shape);
  int64_t off = 0;
  for (size_t r = 0; r < requests.size(); ++r) {
    SReadRowsInto(requests[r], std::span<const int64_t>(iota.data(), lens[r]), packed, off);
    off += lens[r];
  }
  // Differential check against the scalar oracle over the packed area.
  std::vector<float> want(kPadded * kCols, 0.0f);
  off = 0;
  for (size_t r = 0; r < requests.size(); ++r) {
    ReferenceGather(requests[r], std::vector<int64_t>(iota.begin(), iota.begin() + lens[r]),
                    want, off, kCols);
    off += lens[r];
  }
  EXPECT_EQ(std::memcmp(arena.data(), want.data(), arena.size() * sizeof(float)), 0);
  // Scatter each request's span back out and compare bitwise.
  off = 0;
  for (size_t r = 0; r < requests.size(); ++r) {
    std::vector<float> out(static_cast<size_t>(lens[r] * kCols), 0.0f);
    SWriteRowsFrom(packed, off, std::span<const int64_t>(iota.data(), lens[r]),
                   TensorView(out.data(), Shape{lens[r], kCols}));
    EXPECT_EQ(std::memcmp(out.data(), requests[r].data(), out.size() * sizeof(float)), 0)
        << "request " << r;
    off += lens[r];
  }
}

TEST(BatchPackTest, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(26);
  Tensor src = Tensor::Random({257, 33}, rng);  // odd sizes: ragged chunking
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < src.dim(0); i += 2) {
    rows.push_back(i);  // strided ids: no consecutive runs to coalesce
  }
  std::vector<std::vector<float>> gathered;
  std::vector<std::vector<float>> scattered;
  for (int threads : {1, 4, 7}) {
    ScopedNumThreads scoped(threads);
    std::vector<float> packed(rows.size() * 33, 0.0f);
    SReadRowsInto(src, rows, TensorView(packed.data(), Shape{static_cast<int64_t>(rows.size()), 33}),
                  0);
    std::vector<float> out(static_cast<size_t>(src.size()), 0.0f);
    SWriteRowsFrom(ConstTensorView(packed.data(), Shape{static_cast<int64_t>(rows.size()), 33}), 0,
                   rows, TensorView(out.data(), Shape{257, 33}));
    gathered.push_back(std::move(packed));
    scattered.push_back(std::move(out));
  }
  for (size_t i = 1; i < gathered.size(); ++i) {
    EXPECT_EQ(std::memcmp(gathered[0].data(), gathered[i].data(),
                          gathered[0].size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(scattered[0].data(), scattered[i].data(),
                          scattered[0].size() * sizeof(float)),
              0);
  }
}

// Permutation invariance at the primitive level: any order of the index
// produces the same scatter result.
TEST(MicroTileRoundTripTest, ScatterIsOrderInvariant) {
  Rng rng(5);
  Tensor t = Tensor::RandomSparse({16, 16}, 0.5, rng);
  SparsityDetector d1(/*shuffle_seed=*/1), d2(/*shuffle_seed=*/99);
  MicroTileIndex i1 = d1.Detect(t, MicroTileShape{4, 4});
  MicroTileIndex i2 = d2.Detect(t, MicroTileShape{4, 4});
  Tensor dst1 = Tensor::Zeros({16, 16}), dst2 = Tensor::Zeros({16, 16});
  SWriteMicroTiles(SReadMicroTiles(t, i1), i1, &dst1);
  SWriteMicroTiles(SReadMicroTiles(t, i2), i2, &dst2);
  EXPECT_TRUE(AllClose(dst1, dst2));
}

}  // namespace
}  // namespace pit
