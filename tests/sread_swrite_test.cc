#include <gtest/gtest.h>

#include <numeric>

#include "pit/core/sread_swrite.h"

namespace pit {
namespace {

TEST(SReadTest, GathersRowsInIndexOrder) {
  Tensor t({4, 3});
  for (int64_t i = 0; i < 12; ++i) {
    t[i] = static_cast<float>(i);
  }
  const std::vector<int64_t> rows = {2, 0};
  Tensor packed = SReadRows(t, rows);
  EXPECT_EQ(packed.shape(), (Shape{2, 3}));
  EXPECT_EQ(packed.At(0, 0), 6.0f);
  EXPECT_EQ(packed.At(1, 0), 0.0f);
}

TEST(SReadTest, GathersColsInIndexOrder) {
  Tensor t({2, 4});
  for (int64_t i = 0; i < 8; ++i) {
    t[i] = static_cast<float>(i);
  }
  const std::vector<int64_t> cols = {3, 1};
  Tensor packed = SReadCols(t, cols);
  EXPECT_EQ(packed.shape(), (Shape{2, 2}));
  EXPECT_EQ(packed.At(0, 0), 3.0f);
  EXPECT_EQ(packed.At(0, 1), 1.0f);
  EXPECT_EQ(packed.At(1, 0), 7.0f);
}

TEST(SWriteTest, RowRoundTripRestoresOriginalPositions) {
  Rng rng(1);
  Tensor t = Tensor::Random({8, 5}, rng);
  const std::vector<int64_t> rows = {6, 1, 3};
  Tensor packed = SReadRows(t, rows);
  Tensor dst = Tensor::Zeros({8, 5});
  SWriteRows(packed, rows, &dst);
  for (int64_t r : rows) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(dst.At(r, c), t.At(r, c));
    }
  }
  // Unwritten rows remain zero.
  for (int64_t c = 0; c < 5; ++c) {
    EXPECT_EQ(dst.At(0, c), 0.0f);
  }
}

TEST(SWriteTest, ColsAddAccumulates) {
  Tensor packed = Tensor::Full({2, 2}, 1.0f);
  Tensor dst = Tensor::Full({2, 4}, 10.0f);
  const std::vector<int64_t> cols = {1, 3};
  SWriteColsAdd(packed, cols, &dst);
  EXPECT_EQ(dst.At(0, 1), 11.0f);
  EXPECT_EQ(dst.At(0, 3), 11.0f);
  EXPECT_EQ(dst.At(0, 0), 10.0f);
}

TEST(MicroTileRoundTripTest, ReadThenWriteIsIdentityOnCoveredArea) {
  Rng rng(2);
  Tensor t = Tensor::RandomSparse({24, 24}, 0.6, rng);
  SparsityDetector detector(/*shuffle_seed=*/7);
  for (const MicroTileShape micro : {MicroTileShape{4, 4}, MicroTileShape{1, 8},
                                     MicroTileShape{8, 1}, MicroTileShape{3, 5}}) {
    MicroTileIndex index = detector.Detect(t, micro);
    Tensor packed = SReadMicroTiles(t, index);
    Tensor dst = Tensor::Zeros({24, 24});
    SWriteMicroTiles(packed, index, &dst);
    EXPECT_TRUE(AllClose(dst, t)) << "micro " << micro.ToString();
  }
}

TEST(MicroTileRoundTripTest, RaggedShapeRoundTrips) {
  Rng rng(3);
  Tensor t = Tensor::RandomSparse({10, 13}, 0.5, rng);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{4, 4});
  Tensor packed = SReadMicroTiles(t, index);
  Tensor dst = Tensor::Zeros({10, 13});
  SWriteMicroTiles(packed, index, &dst);
  EXPECT_TRUE(AllClose(dst, t));
}

TEST(MicroTileRoundTripTest, PackedShapeMatchesIndex) {
  Rng rng(4);
  Tensor t = Tensor::RandomSparse({16, 16}, 0.7, rng);
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(t, MicroTileShape{2, 8});
  Tensor packed = SReadMicroTiles(t, index);
  EXPECT_EQ(packed.dim(0), index.NumNonZero() * 2);
  EXPECT_EQ(packed.dim(1), 8);
}

// Permutation invariance at the primitive level: any order of the index
// produces the same scatter result.
TEST(MicroTileRoundTripTest, ScatterIsOrderInvariant) {
  Rng rng(5);
  Tensor t = Tensor::RandomSparse({16, 16}, 0.5, rng);
  SparsityDetector d1(/*shuffle_seed=*/1), d2(/*shuffle_seed=*/99);
  MicroTileIndex i1 = d1.Detect(t, MicroTileShape{4, 4});
  MicroTileIndex i2 = d2.Detect(t, MicroTileShape{4, 4});
  Tensor dst1 = Tensor::Zeros({16, 16}), dst2 = Tensor::Zeros({16, 16});
  SWriteMicroTiles(SReadMicroTiles(t, i1), i1, &dst1);
  SWriteMicroTiles(SReadMicroTiles(t, i2), i2, &dst2);
  EXPECT_TRUE(AllClose(dst1, dst2));
}

}  // namespace
}  // namespace pit
