// Randomized einsum fuzzing: generated well-formed expressions must parse,
// round-trip through ToString, and satisfy the Theorem-1 classification
// invariants regardless of their shape.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "pit/common/rng.h"
#include "pit/expr/einsum.h"

namespace pit {
namespace {

// Generates a random well-formed einsum string with known ground truth about
// which variables are output/spatial, derived, and reduced.
struct FuzzCase {
  std::string text;
  std::set<std::string> output_vars;
  std::set<std::string> derived_vars;
  std::set<std::string> all_vars;
};

FuzzCase MakeCase(Rng& rng) {
  const char* pool[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  const int num_vars = static_cast<int>(rng.NextInt(2, 6));
  FuzzCase fc;
  std::vector<std::string> vars;
  for (int i = 0; i < num_vars; ++i) {
    vars.push_back(pool[i]);
    fc.all_vars.insert(pool[i]);
  }
  // Output uses a random nonempty prefix of the vars.
  const int num_out = static_cast<int>(rng.NextInt(1, num_vars));
  std::string out = "C[";
  for (int i = 0; i < num_out; ++i) {
    out += (i ? "," : "") + vars[static_cast<size_t>(i)];
    fc.output_vars.insert(vars[static_cast<size_t>(i)]);
  }
  out += "]";
  // One or two inputs, each indexing a random subset (all vars must appear
  // somewhere; put them in input 0). Optionally make one term derived.
  std::string in0 = "A[";
  for (int i = 0; i < num_vars; ++i) {
    in0 += (i ? "," : "") + vars[static_cast<size_t>(i)];
  }
  // Derived term: combine the last two vars as "x+y" in a second input.
  std::string in1;
  if (num_vars >= 3 && rng.NextBool(0.5)) {
    const std::string& x = vars[static_cast<size_t>(num_vars - 2)];
    const std::string& y = vars[static_cast<size_t>(num_vars - 1)];
    in1 = "B[" + vars[0] + "," + x + "+" + y + "]";
    fc.derived_vars.insert(x);
    fc.derived_vars.insert(y);
  }
  in0 += "]";
  fc.text = out + " += " + in0 + (in1.empty() ? "" : " * " + in1);
  return fc;
}

TEST(EinsumFuzzTest, RandomExpressionsSatisfyTheorem1) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    FuzzCase fc = MakeCase(rng);
    SCOPED_TRACE(fc.text);
    auto parsed = ParseEinsumOrNull(fc.text);
    ASSERT_TRUE(parsed.has_value());
    auto infos = parsed->AnalyzeAxes();
    std::set<std::string> seen;
    for (const auto& info : infos) {
      seen.insert(info.name);
      const bool is_output = fc.output_vars.count(info.name) > 0;
      const bool is_derived = fc.derived_vars.count(info.name) > 0;
      EXPECT_EQ(info.kind == AxisKind::kSpatial, is_output) << info.name;
      EXPECT_EQ(info.in_derived_term, is_derived) << info.name;
      if (is_derived) {
        EXPECT_FALSE(info.is_pit_axis) << info.name;
      } else {
        // Sum reduction is commutative+associative: every non-derived axis
        // (spatial or reduction) is a PIT-axis.
        EXPECT_TRUE(info.is_pit_axis) << info.name;
      }
    }
    EXPECT_EQ(seen, fc.all_vars);
  }
}

TEST(EinsumFuzzTest, ToStringReparsesToSameAnalysis) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    FuzzCase fc = MakeCase(rng);
    EinsumExpr e1 = ParseEinsum(fc.text);
    EinsumExpr e2 = ParseEinsum(e1.ToString());
    EXPECT_EQ(e1.PitAxes(), e2.PitAxes()) << fc.text;
    EXPECT_EQ(e1.ToString(), e2.ToString());
  }
}

TEST(EinsumFuzzTest, MutatedStringsNeverCrash) {
  // Parser robustness: random mutations either parse or return nullopt —
  // they must not abort or produce inconsistent expressions.
  Rng rng(99);
  const std::string base = "C[m,n] += A[m,k] * B[k,n]";
  const char junk[] = {'[', ']', '+', '*', ',', ' ', 'x', '='};
  for (int trial = 0; trial < 500; ++trial) {
    std::string s = base;
    const int edits = static_cast<int>(rng.NextInt(1, 4));
    for (int i = 0; i < edits; ++i) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(s.size()));
      s[pos] = junk[rng.NextBelow(sizeof(junk))];
    }
    auto parsed = ParseEinsumOrNull(s);
    if (parsed.has_value()) {
      // Whatever parsed must analyze without contradiction.
      for (const auto& info : parsed->AnalyzeAxes()) {
        EXPECT_FALSE(info.name.empty());
      }
    }
  }
}

}  // namespace
}  // namespace pit
