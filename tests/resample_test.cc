// Fig. 5's periodic sparsity sampling: the compiler must migrate to a better
// kernel when the pattern drifts, and must not churn when it is stable.
#include <gtest/gtest.h>

#include "pit/core/compiler.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

TEST(ResampleTest, DisabledByDefault) {
  PitCompiler compiler(V100());
  Rng rng(1);
  Tensor b = Tensor::Random({128, 64}, rng);
  for (int i = 0; i < 5; ++i) {
    Tensor a = Tensor::RandomBlockSparse(128, 128, 8, 1, 0.95, rng);
    compiler.SparseMatmul(a, b);
  }
  EXPECT_EQ(compiler.reselections(), 0);
  EXPECT_EQ(compiler.kernels_compiled(), 1);
}

TEST(ResampleTest, StablePatternDoesNotChurn) {
  PitCompiler compiler(V100());
  compiler.EnablePeriodicResample(2);
  Rng rng(2);
  Tensor b = Tensor::Random({128, 64}, rng);
  for (int i = 0; i < 8; ++i) {
    Tensor a = Tensor::RandomBlockSparse(128, 128, 8, 1, 0.95, rng);
    PitExecution exec = compiler.SparseMatmul(a, b);
    EXPECT_TRUE(AllClose(exec.output, MatMul(a, b), 1e-3f, 1e-4f));
  }
  // Re-sampling ran but the optimum never moved: no reselections.
  EXPECT_EQ(compiler.reselections(), 0);
}

TEST(ResampleTest, DriftedPatternTriggersReselection) {
  // Same sparsity ratio and shape (same cache bucket) but the granularity
  // flips from whole-dead-rows to fine columns: the optimal PIT-axis changes
  // from m (row gather) to k, which only periodic re-sampling can catch.
  PitCompiler compiler(V100());
  compiler.EnablePeriodicResample(1);
  Rng rng(3);
  Tensor b = Tensor::Random({1024, 256}, rng);

  // Phase 1: row-granular sparsity (padding-like), 90% dead rows.
  Tensor row_sparse = Tensor::RandomBlockSparse(1024, 1024, 1, 1024, 0.9, rng);
  PitExecution e1 = compiler.SparseMatmul(row_sparse, b);
  ASSERT_FALSE(e1.plan.fallback_dense);

  // Phase 2: same 90% ratio, but 32x1-granular.
  Tensor col_sparse = Tensor::RandomBlockSparse(1024, 1024, 32, 1, 0.9, rng);
  PitExecution e2 = compiler.SparseMatmul(col_sparse, b);
  EXPECT_TRUE(AllClose(e2.output, MatMul(col_sparse, b), 1e-3f, 1e-4f));
  // Either the selection moved (reselections > 0) or the rule legitimately
  // stayed optimal — but the plan must reflect the new pattern's coverage.
  EXPECT_GT(compiler.reselections() + (e2.plan.rule.axis != e1.plan.rule.axis ? 1 : 0), 0);
}

TEST(ResampleTest, ReselectionKeepsResultsExact) {
  PitCompiler compiler(V100());
  compiler.EnablePeriodicResample(1);
  Rng rng(4);
  Tensor b = Tensor::Random({128, 64}, rng);
  for (int i = 0; i < 6; ++i) {
    // Alternate granularities every call.
    Tensor a = (i % 2 == 0) ? Tensor::RandomBlockSparse(128, 128, 1, 128, 0.7, rng)
                            : Tensor::RandomBlockSparse(128, 128, 16, 1, 0.7, rng);
    PitExecution exec = compiler.SparseMatmul(a, b);
    EXPECT_TRUE(AllClose(exec.output, MatMul(a, b), 1e-3f, 1e-4f)) << i;
  }
}

}  // namespace
}  // namespace pit
