// Cross-cutting property sweeps: invariants that must hold over whole
// parameter grids rather than hand-picked points. Heavy use of parameterized
// gtest per the repository's testing conventions.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pit/baselines/engines.h"
#include "pit/core/kernel_selection.h"
#include "pit/core/sread_swrite.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

// ---- Detector: index is exact for every micro-tile shape x sparsity --------

using DetectorParam = std::tuple<int, int, double>;  // micro rows, cols, sparsity

class DetectorSweep : public ::testing::TestWithParam<DetectorParam> {};

TEST_P(DetectorSweep, IndexIsExactAndRoundTrips) {
  const auto [mr, mc, sparsity] = GetParam();
  Rng rng(static_cast<uint64_t>(mr * 1000 + mc * 10 + sparsity * 7));
  Tensor t = Tensor::RandomSparse({48, 40}, sparsity, rng);
  SparsityDetector detector(static_cast<uint64_t>(mr + mc));
  MicroTileIndex index = detector.Detect(t, MicroTileShape{mr, mc});
  // Every offset names a tile with >=1 nonzero; the complement is all-zero.
  std::vector<bool> live(static_cast<size_t>(index.TotalMicroTiles()), false);
  for (int64_t off : index.offsets) {
    live[static_cast<size_t>(off)] = true;
  }
  for (int64_t br = 0; br < index.block_rows; ++br) {
    for (int64_t bc = 0; bc < index.block_cols; ++bc) {
      bool nonzero = false;
      for (int64_t r = br * mr; r < std::min<int64_t>(48, (br + 1) * mr); ++r) {
        for (int64_t c = bc * mc; c < std::min<int64_t>(40, (bc + 1) * mc); ++c) {
          nonzero |= t.At(r, c) != 0.0f;
        }
      }
      EXPECT_EQ(live[static_cast<size_t>(br * index.block_cols + bc)], nonzero)
          << "tile (" << br << "," << bc << ")";
    }
  }
  // Gather/scatter round trip restores the tensor exactly.
  Tensor dst = Tensor::Zeros({48, 40});
  SWriteMicroTiles(SReadMicroTiles(t, index), index, &dst);
  EXPECT_TRUE(AllClose(dst, t));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DetectorSweep,
    ::testing::Combine(::testing::Values(1, 2, 8, 48), ::testing::Values(1, 5, 8, 40),
                       ::testing::Values(0.0, 0.5, 0.95, 1.0)));

// ---- Cost model: efficiency/monotonicity over the tile grid ----------------

class TileGridSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TileGridSweep, EfficiencyInUnitIntervalAndCostPositive) {
  const auto [m, n] = GetParam();
  for (Precision p : {Precision::kFp32, Precision::kFp16}) {
    CostModel model(V100(), p);
    const TileShape tile{m, 32, n};
    const double eff = model.TileEfficiency(tile);
    EXPECT_GT(eff, 0.0);
    EXPECT_LT(eff, 1.0);
    EXPECT_GT(model.MatmulTileCost(tile), 0.0);
    // Tensor-core variant is never slower for wmma-compatible tiles.
    if (p == Precision::kFp16 && WmmaCompatible(tile)) {
      EXPECT_LE(model.MatmulTileCost(tile, true), model.MatmulTileCost(tile, false));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TileGridSweep,
                         ::testing::Combine(::testing::Values(8, 16, 32, 64, 128),
                                            ::testing::Values(32, 64, 128)));

// ---- Selection: chosen plan never loses to the dense fallback --------------

using SelParam = std::tuple<int, double>;  // granularity rows, sparsity

class SelectionSweep : public ::testing::TestWithParam<SelParam> {};

TEST_P(SelectionSweep, BestPlanIsNoWorseThanDense) {
  const auto [gm, sparsity] = GetParam();
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern pattern(4096, 4096, gm, 1, sparsity);
  SelectionResult sel = SelectKernel(model, db, {&pattern}, 4096, 4096, 4096);
  EXPECT_LE(sel.best.cost.Total(), sel.dense_cost_us * 1.0000001);
  EXPECT_GT(sel.candidates_evaluated, 0);
  if (!sel.best.fallback_dense) {
    EXPECT_GE(sel.best.covered_fraction, 1.0 - sparsity - 1e-9)
        << "coverage cannot drop below the nonzero mass";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SelectionSweep,
                         ::testing::Combine(::testing::Values(1, 2, 8, 32),
                                            ::testing::Values(0.0, 0.5, 0.9, 0.99)));

// ---- Engines: correctness across granularities ------------------------------

using EngineParam = std::tuple<int, int, double>;  // gm, gn, sparsity

class EngineGranularitySweep : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineGranularitySweep, AllEnginesExactOnBlockPatterns) {
  const auto [gm, gn, sparsity] = GetParam();
  Rng rng(static_cast<uint64_t>(gm * 100 + gn * 10 + sparsity * 3));
  Tensor a = Tensor::RandomBlockSparse(64, 64, gm, gn, sparsity, rng);
  Tensor b = Tensor::Random({64, 16}, rng);
  Tensor ref = MatMul(a, b);
  for (const auto& engine : MakeAllEngines()) {
    EXPECT_TRUE(AllClose(engine->Execute(a, b), ref, 1e-3f, 1e-4f))
        << engine->name() << " g=(" << gm << "," << gn << ") s=" << sparsity;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EngineGranularitySweep,
                         ::testing::Combine(::testing::Values(1, 8, 32),
                                            ::testing::Values(1, 16, 64),
                                            ::testing::Values(0.5, 0.95)));

// ---- Analytic coverage: probability laws over the grid ---------------------

TEST(CoverageLawSweep, NonZeroProbWithinBoundsAndMonotone) {
  for (int64_t gm : {1, 4, 32}) {
    for (double s : {0.1, 0.5, 0.9, 0.99}) {
      AnalyticPattern p(1024, 1024, gm, 1, s);
      double prev = 0.0;
      for (int64_t mr : {1, 2, 4, 8, 16, 32, 64}) {
        const double prob = p.NonZeroProb(MicroTileShape{mr, 1});
        EXPECT_GE(prob, 1.0 - s - 1e-12);  // covering can't hide nonzeros
        EXPECT_LE(prob, 1.0);
        EXPECT_GE(prob, prev - 1e-12);  // bigger micro-tile covers more
        prev = prob;
      }
    }
  }
}

TEST(CoverageLawSweep, WasteZeroIffMicroDividesGranularity) {
  for (int64_t gm : {8, 16, 32}) {
    AnalyticPattern p(1024, 1024, gm, 1, 0.9);
    // Micro-tile that divides the block evenly: zero waste.
    EXPECT_NEAR(WastedComputationFraction(p, {gm, 1}), 0.0, 1e-9);
    EXPECT_NEAR(WastedComputationFraction(p, {gm / 2, 1}), 0.0, 1e-9);
    // Micro-tile spanning multiple blocks: positive waste.
    EXPECT_GT(WastedComputationFraction(p, {gm * 4, 1}), 0.0);
  }
}

}  // namespace
}  // namespace pit
