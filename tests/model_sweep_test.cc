// Consistency sweep over every (model-runner, engine, device, precision)
// combination the benches exercise: costs are positive and finite, breakdown
// components non-negative, memory positive — the regression net under the
// figure harness.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pit/runtime/models.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/seq_len.h"

namespace pit {
namespace {

void CheckRun(const ModelRunCost& run, const char* what) {
  EXPECT_TRUE(std::isfinite(run.cost.Total())) << what;
  EXPECT_GT(run.cost.Total(), 0.0) << what;
  EXPECT_GE(run.cost.compute_us, 0.0) << what;
  EXPECT_GE(run.cost.memory_us, 0.0) << what;
  EXPECT_GE(run.cost.launch_us, 0.0) << what;
  EXPECT_GE(run.cost.convert_us, 0.0) << what;
  EXPECT_GE(run.cost.index_us, 0.0) << what;
  EXPECT_GT(run.memory_bytes, 0) << what;
}

class TransformerEngineSweep
    : public ::testing::TestWithParam<std::tuple<Engine, Precision, bool>> {};

TEST_P(TransformerEngineSweep, CostsWellFormed) {
  const auto [engine, precision, training] = GetParam();
  CostModel model(V100(), precision);
  Rng rng(1);
  auto lens = SampleBatchLens(DatasetSeqLens("mnli"), 16, rng);
  ModelRunCost run = TransformerRun(model, engine, BertBase(), lens, training);
  CheckRun(run, EngineName(engine));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransformerEngineSweep,
    ::testing::Combine(::testing::Values(Engine::kPyTorch, Engine::kPyTorchS,
                                         Engine::kDeepSpeed, Engine::kTurboTransformer,
                                         Engine::kTvm, Engine::kPit),
                       ::testing::Values(Precision::kFp32, Precision::kFp16),
                       ::testing::Bool()));

class MoeEngineSweep : public ::testing::TestWithParam<Engine> {};

TEST_P(MoeEngineSweep, SwitchAndSwinWellFormed) {
  const Engine engine = GetParam();
  CostModel model(A100(), Precision::kFp16);
  Rng rng(2);
  auto lens = SampleBatchLens(DatasetSeqLens("mnli"), 8, rng);
  MoeRunConfig moe;
  moe.num_experts = 16;
  MoeRoutingConfig routing{16, 0.8};
  for (int l = 0; l < 3; ++l) {
    moe.layer_loads.push_back(ExpertLoads(RouteTokens(SumLens(lens), routing, rng), 16));
  }
  CheckRun(SwitchTransformerRun(model, engine, SwitchDims(), lens, moe), "switch");
  CheckRun(SwinMoeRun(model, engine, SwinMoeDims(), 8, 196, moe), "swin");
}

INSTANTIATE_TEST_SUITE_P(Grid, MoeEngineSweep,
                         ::testing::Values(Engine::kPyTorch, Engine::kPyTorchS, Engine::kTutel,
                                           Engine::kDeepSpeed, Engine::kMegaBlocks,
                                           Engine::kPitNoSparseMoe, Engine::kPit));

class SparseAttentionEngineSweep : public ::testing::TestWithParam<Engine> {};

TEST_P(SparseAttentionEngineSweep, WellFormedAcrossLengths) {
  const Engine engine = GetParam();
  CostModel model(V100());
  for (int64_t seq : {1024, 8192}) {
    SparseAttentionRunConfig config;
    config.seq_len = seq;
    config.mask_density = 0.05;
    config.block32_density = 0.12;
    CheckRun(SparseAttentionRun(model, engine, LongformerBase(), config), "attention");
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SparseAttentionEngineSweep,
                         ::testing::Values(Engine::kPyTorch, Engine::kPyTorchS,
                                           Engine::kDeepSpeed, Engine::kLongformerS,
                                           Engine::kPit));

class OptEngineSweep : public ::testing::TestWithParam<std::tuple<Engine, bool>> {};

TEST_P(OptEngineSweep, WellFormed) {
  const auto [engine, training] = GetParam();
  CostModel model(V100());
  Rng rng(3);
  auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 8, rng);
  OptRunConfig config;
  config.training = training;
  CheckRun(OptRun(model, engine, OptDims("125M"), lens, config), "opt");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptEngineSweep,
    ::testing::Combine(::testing::Values(Engine::kPyTorch, Engine::kPyTorchS,
                                         Engine::kDeepSpeed, Engine::kPitNoActivation,
                                         Engine::kPit),
                       ::testing::Bool()));

class SparseTrainingEngineSweep
    : public ::testing::TestWithParam<std::tuple<Engine, int, double>> {};

TEST_P(SparseTrainingEngineSweep, WellFormedAndMonotoneForPit) {
  const auto [engine, block_cols, sparsity] = GetParam();
  CostModel model(V100());
  SparseTrainingRunConfig config;
  config.block_cols = block_cols;
  config.sparsity = sparsity;
  CheckRun(SparseTrainingRun(model, engine, BertBase(), config), "sparse-training");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SparseTrainingEngineSweep,
    ::testing::Combine(::testing::Values(Engine::kPyTorch, Engine::kPyTorchS, Engine::kPit),
                       ::testing::Values(1, 64), ::testing::Values(0.5, 0.98)));

}  // namespace
}  // namespace pit
